package core

// This file is the high-availability half of the durability story: WAL
// shipping. A primary partition's command log already contains everything
// needed to rebuild the partition (that is what crash recovery replays), so
// a follower replica is recovery run continuously: it tails each partition
// segment plus the coordinator log, replays hardened records into its own
// MVCC storage through the same pe.Replay path recovery uses, and serves
// snapshot SELECTs from the replayed state. Promotion is then crash
// recovery's endgame — resolve in-doubt 2PC legs, evict migrated slots,
// restore pause state — run on state that is already warm.
//
// The in-doubt rule is the one subtlety. The pipelined commit path releases
// a transaction's partition slots before its markers append, so records
// from successor transactions can precede the RecDecide marker in a
// partition segment. A follower must therefore never infer an abort from
// what follows an unresolved RecPrepare: it stalls that partition's apply
// stream (buffering subsequent frames) until a commit decision arrives from
// the coordinator stream or an in-stream marker — and only at promotion,
// when no decision can ever arrive, are the still-undecided prepares
// presumed aborted, exactly as recovery presumes them.
//
// Known limits, by design: a follower must attach before the primary's
// first checkpoint (truncation discards the log prefix a late follower
// would need — ErrShipGap reports the hole; re-seed with a fresh follower);
// cross-partition reads on a follower see each partition's prefix at an
// independent point (per-partition consistent prefix, not a cross-partition
// atomic cut); and a promoted store runs non-durable (its state was never
// logged locally) — re-point clients and schedule a re-seeded standby.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pe"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/wal"
)

// CoordStream is the pseudo-partition index of the coordinator log in the
// replication protocol (partition streams use their real index ≥ 0).
const CoordStream = -1

// ReplBatch is one fetch's worth of shipped WAL: the intact frames past the
// follower's position and the segment's current horizon LSN (for lag
// accounting; the horizon may be beyond the last returned frame when the
// byte budget truncated the batch).
type ReplBatch struct {
	Frames []wal.Frame
	EndLSN uint64
}

// ReplicationSource feeds a follower hardened WAL frames. Implementations:
// StoreSource (in-process replica sets) and client.TCP (a second sstored
// following over the wire).
type ReplicationSource interface {
	FetchBatch(part int, afterLSN uint64, maxBytes int) (ReplBatch, error)
}

// StoreSource adapts a durable primary Store into a ReplicationSource for
// in-process followers.
type StoreSource struct{ St *Store }

// FetchBatch implements ReplicationSource.
func (s StoreSource) FetchBatch(part int, afterLSN uint64, maxBytes int) (ReplBatch, error) {
	return s.St.ReplicationBatch(part, afterLSN, maxBytes)
}

// ReplicationBatch reads hardened WAL frames for one partition stream
// (CoordStream for the coordinator log) past afterLSN. It reads the segment
// file directly rather than hooking the log writer: the read is race-free
// against Stop, ships only what an fsync made real, and keeps working after
// the primary process died — which is exactly when a promoting follower
// drains the tail.
func (s *Store) ReplicationBatch(part int, afterLSN uint64, maxBytes int) (ReplBatch, error) {
	if s.cfg.Dir == "" {
		return ReplBatch{}, fmt.Errorf("core: replication requires a durable primary (no Dir configured)")
	}
	var path string
	if part == CoordStream {
		path = wal.CoordPath(s.cfg.Dir)
	} else if part < 0 || part >= len(s.partList()) {
		return ReplBatch{}, fmt.Errorf("core: replication fetch for partition %d of %d", part, len(s.partList()))
	} else {
		path, _ = wal.PartitionPaths(s.cfg.Dir, part)
	}
	frames, end, err := wal.ReadFrames(path, afterLSN, maxBytes)
	if err != nil {
		return ReplBatch{}, err
	}
	return ReplBatch{Frames: frames, EndLSN: end}, nil
}

// LSNVector returns the last allocated LSN of every partition log — the
// write position a ReplicaSession forwards to get read-your-writes on a
// follower. An acknowledged write's record is at or before this position on
// its partition.
func (s *Store) LSNVector() []uint64 {
	parts := s.partList()
	vec := make([]uint64, len(parts))
	for i, p := range parts {
		if p.log != nil {
			vec[i] = p.log.LSN()
		}
	}
	return vec
}

// FollowerOpts tunes a follower replica.
type FollowerOpts struct {
	// PollInterval is the idle delay between fetch rounds (default 2ms).
	PollInterval time.Duration
	// MaxBatchBytes bounds one fetch's payload (default 1MiB).
	MaxBatchBytes int
	// ReadTimeout bounds how long a session read waits for the follower to
	// catch up to its LSN vector (default 5s).
	ReadTimeout time.Duration
	// HeartbeatTimeout > 0 arms auto-promotion: when every fetch has failed
	// for this long (the primary is unreachable — a wire source), the
	// follower promotes itself and reports through OnPromote. Zero leaves
	// promotion explicit (in-process sources can read the dead primary's
	// files forever, so "unreachable" never happens there).
	HeartbeatTimeout time.Duration
	// OnPromote is called after an automatic promotion completes (or fails).
	OnPromote func(st *Store, err error)
}

// replStream is one shipped log's cursor state. Owned by the apply
// goroutine except applied, which readers poll for session waits.
type replStream struct {
	part    int           // partition index, or CoordStream
	fetched uint64        // last LSN buffered from the source
	applied atomic.Uint64 // last LSN applied (or resolved) into storage
	horizon uint64        // last LSN known present in the segment
	pending []pendingRec  // fetched but not yet applied (stalled behind an in-doubt prepare)
}

type pendingRec struct {
	lsn uint64
	rec *pe.LogRecord
}

// Follower is a read replica: a non-durable, never-started Store whose
// state is maintained by replaying the primary's shipped WAL. Reads are
// served from MVCC snapshots (SnapshotQueryAtSeq needs no partition
// worker); Promote turns it into a live primary.
//
// The follower Store must be opened with the same DDL, procedures,
// dataflows, and partition count as the primary — replay executes the
// primary's logged procedure invocations against the local catalog.
type Follower struct {
	st   *Store
	src  ReplicationSource
	opts FollowerOpts

	// Apply-goroutine-owned protocol state. The partitions' replayDecisions
	// maps alias decisions, and replaySlotMoves alias slotMoves: the same
	// goroutine that mutates them calls pe.Replay, so there is no race.
	coord      *replStream
	parts      []*replStream
	decisions  map[uint64]bool // mp txn id → durable commit decision
	slotMoves  map[uint64]int  // slot-migration leg id → slot
	evictOwner map[int]int     // slot → owner per its last committed migration
	paused     map[string]bool // dataflows paused on the primary
	maxMP      uint64

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
	running  atomic.Bool
	promoted atomic.Bool

	mu  sync.Mutex
	err error // sticky fatal apply error (divergence: gap, decode, replay)
}

// NewFollower wires a follower replica over src. st must be a fresh,
// non-durable (Dir == ""), never-started Store with the primary's schema
// already applied; call Run to start replication.
func NewFollower(st *Store, src ReplicationSource, opts FollowerOpts) (*Follower, error) {
	if st.cfg.Dir != "" {
		return nil, fmt.Errorf("core: follower store must be non-durable (Dir set to %q); its state comes from the shipped WAL", st.cfg.Dir)
	}
	if st.partList()[0].pe.Started() {
		return nil, fmt.Errorf("core: follower store must not be started; replay requires stopped partition engines")
	}
	if ss, ok := src.(StoreSource); ok && ss.St.NumPartitions() != st.NumPartitions() {
		return nil, fmt.Errorf("core: follower has %d partitions, primary has %d; counts must match", st.NumPartitions(), ss.St.NumPartitions())
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 2 * time.Millisecond
	}
	if opts.MaxBatchBytes <= 0 {
		opts.MaxBatchBytes = 1 << 20
	}
	if opts.ReadTimeout <= 0 {
		opts.ReadTimeout = 5 * time.Second
	}
	f := &Follower{
		st:         st,
		src:        src,
		opts:       opts,
		coord:      &replStream{part: CoordStream},
		decisions:  make(map[uint64]bool),
		slotMoves:  make(map[uint64]int),
		evictOwner: make(map[int]int),
		paused:     make(map[string]bool),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	for _, p := range st.partList() {
		f.parts = append(f.parts, &replStream{part: p.idx})
		p.pe.SetReplayDecisions(f.decisions)
		p.pe.SetReplaySlotMoves(f.slotMoves, p.evictSlot)
	}
	return f, nil
}

// Store exposes the follower's underlying store (stats, catalog). Do not
// write to it or start it; Promote does that once.
func (f *Follower) Store() *Store { return f.st }

// Err returns the sticky fatal error, if replication has diverged.
func (f *Follower) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

func (f *Follower) setErr(err error) {
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
}

// Lag returns the replication lag in log records, summed across streams
// (horizon minus applied; LSNs are dense, so the difference counts records).
func (f *Follower) Lag() int64 { return f.st.met.ReplLag.Load() }

// Applied returns the sum of applied LSNs across streams — a monotone
// caught-up-ness score (see MostCaughtUp).
func (f *Follower) Applied() uint64 {
	total := f.coord.applied.Load()
	for _, strm := range f.parts {
		total += strm.applied.Load()
	}
	return total
}

// MostCaughtUp picks the follower with the highest applied position — the
// promotion candidate that minimizes lost (never-acked) tail work.
func MostCaughtUp(fs []*Follower) *Follower {
	var best *Follower
	var bestApplied uint64
	for _, f := range fs {
		if a := f.Applied(); best == nil || a > bestApplied {
			best, bestApplied = f, a
		}
	}
	return best
}

// Run starts the apply loop. One background goroutine owns all replication
// state; reads run on caller goroutines against MVCC snapshots, exactly as
// they do against a live primary's writer.
func (f *Follower) Run() error {
	if f.promoted.Load() {
		return fmt.Errorf("core: follower was promoted")
	}
	if !f.running.CompareAndSwap(false, true) {
		return fmt.Errorf("core: follower already running")
	}
	go f.run()
	return nil
}

func (f *Follower) run() {
	defer close(f.done)
	var downSince time.Time
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		progress, ferr := f.pollOnce()
		if f.Err() != nil {
			return // diverged: hold state for inspection, refuse promotion
		}
		switch {
		case ferr == nil:
			downSince = time.Time{}
		case errors.Is(ferr, wal.ErrShipGap):
			f.setErr(ferr)
			return
		case f.opts.HeartbeatTimeout > 0:
			if downSince.IsZero() {
				downSince = time.Now()
			} else if time.Since(downSince) >= f.opts.HeartbeatTimeout {
				// Primary unreachable past the heartbeat window: take over.
				// Promote joins this goroutine via done, so hand off first.
				go func() {
					st, err := f.Promote()
					if f.opts.OnPromote != nil {
						f.opts.OnPromote(st, err)
					}
				}()
				return
			}
		}
		if !progress {
			select {
			case <-f.stop:
				return
			case <-time.After(f.opts.PollInterval):
			}
		}
	}
}

// pollOnce runs one fetch-and-apply round over every stream. It returns
// whether any frame was buffered or applied, plus the last fetch error
// (heartbeat signal). Decode and replay failures set the sticky error.
func (f *Follower) pollOnce() (progress bool, fetchErr error) {
	// Coordinator stream first: its decisions unblock stalled partitions in
	// the same round.
	batch, err := f.src.FetchBatch(CoordStream, f.coord.fetched, f.opts.MaxBatchBytes)
	if err != nil {
		fetchErr = err
	} else {
		for _, fr := range batch.Frames {
			rec, derr := wal.DecodeRecord(fr.Payload)
			if derr != nil {
				f.setErr(fmt.Errorf("core: replicated coordinator record at LSN %d: %w", fr.LSN, derr))
				return progress, fetchErr
			}
			f.applyCoord(rec)
			f.coord.fetched = fr.LSN
			f.coord.applied.Store(fr.LSN)
			progress = true
		}
		if batch.EndLSN > f.coord.horizon {
			f.coord.horizon = batch.EndLSN
		}
	}
	for _, strm := range f.parts {
		batch, err := f.src.FetchBatch(strm.part, strm.fetched, f.opts.MaxBatchBytes)
		if err != nil {
			fetchErr = err
			continue
		}
		for _, fr := range batch.Frames {
			rec, derr := wal.DecodeRecord(fr.Payload)
			if derr != nil {
				f.setErr(fmt.Errorf("core: replicated record at LSN %d (partition %d): %w", fr.LSN, strm.part, derr))
				return progress, fetchErr
			}
			// An in-stream decide marker is a durable commit decision (a
			// participant writes it only after the coordinator's force — and
			// for one-phase transactions it IS the commit record).
			if rec.Kind == pe.RecDecide && rec.Commit {
				f.decisions[rec.MPTxnID] = true
			}
			if rec.MPTxnID > f.maxMP {
				f.maxMP = rec.MPTxnID
			}
			strm.pending = append(strm.pending, pendingRec{lsn: fr.LSN, rec: rec})
			strm.fetched = fr.LSN
			progress = true
		}
		if batch.EndLSN > strm.horizon {
			strm.horizon = batch.EndLSN
		}
		applied, err := f.drainPending(strm, false)
		if err != nil {
			f.setErr(err)
			return progress, fetchErr
		}
		progress = progress || applied
	}
	f.updateLag()
	return progress, fetchErr
}

// applyCoord folds one coordinator-log record into the protocol state.
func (f *Follower) applyCoord(rec *pe.LogRecord) {
	switch rec.Kind {
	case pe.RecDecide:
		if rec.Commit {
			f.decisions[rec.MPTxnID] = true
		}
	case pe.RecSlotCommit:
		// A slot migration's commit record doubles as the decision for the
		// destination's prepared leg, and names the slot's new owner.
		f.decisions[rec.MPTxnID] = true
		f.slotMoves[rec.MPTxnID] = rec.Slot
		f.evictOwner[rec.Slot] = rec.ToPart
	case pe.RecPauseGraph:
		f.paused[rec.Proc] = true
	case pe.RecResumeGraph:
		delete(f.paused, rec.Proc)
	}
	if rec.MPTxnID > f.maxMP {
		f.maxMP = rec.MPTxnID
	}
}

// drainPending applies a partition stream's buffered records in log order,
// stopping at an in-doubt prepare (unless promoting, when the missing
// decision is final and the prepare is presumed aborted — recovery's rule).
func (f *Follower) drainPending(strm *replStream, promoting bool) (applied bool, err error) {
	p := f.st.partList()[strm.part]
	for len(strm.pending) > 0 {
		pr := strm.pending[0]
		switch {
		case pr.rec.Kind == pe.RecDecide:
			// Already folded into decisions at fetch time; the marker itself
			// applies nothing.
		case pr.rec.Kind == pe.RecPrepare && !f.decisions[pr.rec.MPTxnID]:
			if !promoting {
				return applied, nil // in-doubt: stall this stream
			}
			// Promoting: no decision can ever arrive — presumed abort, drop
			// the leg and continue with the records behind it (they executed
			// on the primary and never read this leg's unpublished writes).
		default:
			if rerr := p.replay(pr.rec, f.st.cfg.LogMode); rerr != nil {
				return applied, fmt.Errorf("core: replica replay at LSN %d (partition %d): %w", pr.lsn, strm.part, rerr)
			}
			f.st.met.ReplRecordsApplied.Add(1)
		}
		strm.pending = strm.pending[1:]
		strm.applied.Store(pr.lsn)
		applied = true
	}
	return applied, nil
}

// updateLag recomputes the lag gauge: records known hardened on the primary
// but not yet applied here, summed across streams.
func (f *Follower) updateLag() {
	lag := int64(0)
	if h, a := f.coord.horizon, f.coord.applied.Load(); h > a {
		lag += int64(h - a)
	}
	for _, strm := range f.parts {
		if h, a := strm.horizon, strm.applied.Load(); h > a {
			lag += int64(h - a)
		}
	}
	f.st.met.ReplLag.Store(lag)
}

// Promote turns the follower into a live primary: stop the apply loop,
// drain every stream to its end (file reads outlive the primary process, so
// an in-process drain reaches the hardened tail even after a crash),
// resolve in-doubt 2PC state exactly as crash recovery would, and start the
// partition workers. The returned Store is the follower's own store, now
// serving reads and writes — non-durable (see the file comment), so
// schedule a re-seeded standby behind it.
//
// Every acknowledged write survives promotion: an ack implies the record
// was fsynced on the primary, fsynced records are exactly what FetchBatch
// ships, and the drain loops until the segments are dry.
func (f *Follower) Promote() (*Store, error) {
	f.stopOnce.Do(func() { close(f.stop) })
	if f.running.Load() {
		<-f.done
	}
	if !f.promoted.CompareAndSwap(false, true) {
		return nil, fmt.Errorf("core: follower already promoted")
	}
	if err := f.Err(); err != nil {
		return nil, fmt.Errorf("core: cannot promote a diverged follower: %w", err)
	}
	// Final drain: pull until a full round moves nothing. Fetch errors stop
	// a round from progressing (a dead wire source), which ends the loop
	// with whatever was already hardened and shipped.
	for {
		progress, ferr := f.pollOnce()
		if err := f.Err(); err != nil {
			return nil, fmt.Errorf("core: cannot promote a diverged follower: %w", err)
		}
		if ferr != nil && errors.Is(ferr, wal.ErrShipGap) {
			f.setErr(ferr)
			return nil, fmt.Errorf("core: cannot promote a diverged follower: %w", ferr)
		}
		if !progress {
			break
		}
	}
	// Presumed-abort the in-doubt prepares and apply the records stalled
	// behind them.
	for _, strm := range f.parts {
		if _, err := f.drainPending(strm, true); err != nil {
			f.setErr(err)
			return nil, err
		}
	}
	st := f.st
	// Committed slot migrations: drop the stale source copies and route the
	// slots to their migrated owners (the rows already sit there; no rehome
	// needed on the live path).
	st.evictMigratedSlots(f.evictOwner)
	if len(f.evictOwner) > 0 {
		tbl := st.slots.Load().Clone()
		for slot, owner := range f.evictOwner {
			tbl.Owner[slot] = uint16(owner)
		}
		st.slots.Store(tbl)
	}
	for _, p := range st.partList() {
		p.cat.Clock().Publish()
	}
	st.restorePausedGraphs(f.paused)
	st.nextMPTxnID.Store(f.maxMP)
	f.updateLag()
	if err := st.Start(); err != nil {
		return nil, err
	}
	st.met.Promotions.Add(1)
	return st, nil
}

// Query runs a read-only SELECT against the follower's replayed state (no
// session ordering constraint — a consistent prefix per partition).
func (f *Follower) Query(sqlText string, params ...types.Value) (*pe.Result, error) {
	res, _, err := f.query(nil, sqlText, params)
	return res, err
}

// query is the follower read path: optionally wait for the session's LSN
// floor, then run the SELECT on MVCC snapshots — partition 0 for
// unpartitioned scopes, a pinned fan-out + merge for partitioned ones
// (querySelect's shape, on SnapshotQueryAtSeq so no worker is needed). It
// returns the applied-LSN vector observed before pinning, which the session
// folds back in for monotonic reads.
func (f *Follower) query(min []uint64, sqlText string, params []types.Value) (*pe.Result, []uint64, error) {
	if f.promoted.Load() {
		return nil, nil, fmt.Errorf("core: follower was promoted; query the promoted store directly")
	}
	if err := f.waitApplied(min); err != nil {
		return nil, nil, err
	}
	st := f.st
	stmt, err := sql.ParseCached(sqlText)
	if err != nil {
		return nil, nil, err
	}
	sel, ok := stmt.(*sql.Select)
	if !ok {
		return nil, nil, fmt.Errorf("core: follower replica is read-only; only SELECT is supported")
	}
	st.met.FollowerReads.Add(1)
	// Applied LSNs are stored after each record's publish, so state applied
	// up to this vector is visible to the snapshots pinned below.
	seen := make([]uint64, len(f.parts))
	for i, strm := range f.parts {
		seen[i] = strm.applied.Load()
	}
	partitioned := false
	if len(st.partList()) > 1 {
		if partitioned, err = st.queryScope(sel); err != nil {
			return nil, nil, err
		}
	}
	if !partitioned {
		st.routeMu.RLock()
		defer st.routeMu.RUnlock()
		p := st.partList()[0]
		pin := p.pe.AcquireSnapshot()
		defer p.pe.ReleaseSnapshot(pin)
		res, err := p.pe.SnapshotQueryAtSeq(pin.Seq(), sqlText, params...)
		if err != nil {
			return nil, nil, err
		}
		return res, seen, nil
	}
	plan, legSQL, legParams, err := fanoutLeg(sel, sqlText, params)
	if err != nil {
		return nil, nil, err
	}
	// Pin one snapshot per partition. Unlike the primary's querySelect there
	// is no seqMu cut against 2PC publication: the apply goroutine publishes
	// a coordinated transaction's legs at independent moments, so a
	// follower fan-out is a consistent prefix per partition, not an atomic
	// cross-partition cut (see the file comment).
	st.routeMu.RLock()
	parts := st.partList()
	pins := make([]storage.SnapPin, len(parts))
	for i, p := range parts {
		pins[i] = p.pe.AcquireSnapshot()
	}
	defer func() {
		for i, p := range parts {
			p.pe.ReleaseSnapshot(pins[i])
		}
	}()
	results := make([]*pe.Result, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i := range parts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = parts[i].pe.SnapshotQueryAtSeq(pins[i].Seq(), legSQL, legParams...)
		}(i)
	}
	wg.Wait()
	st.routeMu.RUnlock()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	res, err := plan.merge(sel, results, params)
	if err != nil {
		return nil, nil, err
	}
	return res, seen, nil
}

// waitApplied blocks until every partition stream has applied at least its
// entry in min (a primary LSNVector), within the read timeout.
func (f *Follower) waitApplied(min []uint64) error {
	if len(min) == 0 {
		return nil
	}
	if len(min) > len(f.parts) {
		return fmt.Errorf("core: session LSN vector has %d partitions, follower has %d", len(min), len(f.parts))
	}
	deadline := time.Now().Add(f.opts.ReadTimeout)
	for i, want := range min {
		strm := f.parts[i]
		for strm.applied.Load() < want {
			if err := f.Err(); err != nil {
				return err
			}
			if f.promoted.Load() {
				return fmt.Errorf("core: follower was promoted; query the promoted store directly")
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("core: replica read timed out waiting for LSN %d on partition %d (applied %d)", want, i, strm.applied.Load())
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	return nil
}

// ReplicaSession orders one client's follower reads: Forward installs a
// floor (the primary's LSNVector after a write, for read-your-writes), and
// each successful Query raises the floor to the state it observed
// (monotonic reads across queries).
type ReplicaSession struct {
	f   *Follower
	mu  sync.Mutex
	min []uint64
}

// Session opens a read session on the follower.
func (f *Follower) Session() *ReplicaSession { return &ReplicaSession{f: f} }

// Forward raises the session's LSN floor (entries merge by max; a shorter
// vector leaves later partitions unconstrained).
func (rs *ReplicaSession) Forward(vec []uint64) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if len(vec) > len(rs.min) {
		rs.min = append(rs.min, make([]uint64, len(vec)-len(rs.min))...)
	}
	for i, v := range vec {
		if v > rs.min[i] {
			rs.min[i] = v
		}
	}
}

// Query runs a SELECT no staler than the session floor.
func (rs *ReplicaSession) Query(sqlText string, params ...types.Value) (*pe.Result, error) {
	rs.mu.Lock()
	min := append([]uint64(nil), rs.min...)
	rs.mu.Unlock()
	res, seen, err := rs.f.query(min, sqlText, params)
	if err != nil {
		return nil, err
	}
	rs.Forward(seen)
	return res, nil
}
