package core

import (
	"sync"
	"testing"

	"repro/internal/types"
)

// TestEpochReadersRebalanceCheckpointHammer drives every reclamation
// antagonist at once: lock-free fan-out snapshot readers, the ingest write
// path, checkpoint barriers (version sweep + log truncation), the
// anti-cache evictor (small memory budget), and a live rebalance whose
// slot migration stages and flips rows under the readers. Run under -race
// in CI; the final totals prove no work was lost or duplicated.
func TestEpochReadersRebalanceCheckpointHammer(t *testing.T) {
	st := buildPartApp(t, Config{Partitions: 2, Dir: t.TempDir(), MemoryBudget: 64 << 10})
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	const keys = 32
	ingestKeys(t, st, keys, 1)

	const feeders = 2
	perFeeder := 320 // feeders*perFeeder divisible by keys
	if testing.Short() {
		perFeeder = 64
	}
	stop := make(chan struct{})
	errCh := make(chan error, feeders+3)
	var wg sync.WaitGroup
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			for i := 0; i < perFeeder; i++ {
				k := int64((f*perFeeder + i) % keys)
				if err := st.Ingest("events", types.Row{types.NewInt(k), types.NewInt(1)}); err != nil {
					errCh <- err
					return
				}
			}
		}(f)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() { // lock-free fan-out snapshot readers
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := st.Query("SELECT COUNT(*), SUM(n) FROM totals")
				if err != nil {
					errCh <- err
					return
				}
				if res.Rows[0][0].Int() != keys {
					errCh <- errTornCount(res.Rows[0][0].Int())
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() { // checkpoint barriers: version sweep + WAL truncation
		defer wg.Done()
		for i := 0; i < 8; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := st.Checkpoint(); err != nil {
				errCh <- err
				return
			}
		}
	}()

	if err := st.Rebalance(4); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	st.FlushBatches()
	st.Drain()

	got := totals(t, st)
	wantPer := int64(2 * (1 + feeders*perFeeder/keys))
	for k := int64(0); k < keys; k++ {
		if got[k] != wantPer {
			for i, p := range st.partList() {
				res, _ := p.pe.Query("SELECT n FROM totals WHERE k = ?", types.NewInt(k))
				t.Logf("part %d totals[%d] = %v, events partial=%d derived partial=%d",
					i, k, res.Rows, p.pe.PartialLen("events"), p.pe.PartialLen("derived"))
			}
			t.Fatalf("key %d total = %d want %d (lost or duplicated work)", k, got[k], wantPer)
		}
	}
	checkCanonical(t, st)
}

type errTornCount int64

func (e errTornCount) Error() string {
	return "fan-out snapshot saw a torn key set: COUNT(*) = " + types.NewInt(int64(e)).String()
}
