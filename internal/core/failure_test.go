package core

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/types"
	"repro/internal/wal"
)

// TestCrashBetweenSnapshotAndTruncate exercises the nastiest checkpoint
// window: the snapshot is durable but the log was not yet truncated, so
// the log still holds records whose effects are inside the snapshot.
// Replay must skip them by LSN or state is double-applied.
func TestCrashBetweenSnapshotAndTruncate(t *testing.T) {
	dir := t.TempDir()
	st := buildApp(t, Config{Dir: dir})
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	ingestN(t, st, 6)

	// Save the pre-checkpoint log, checkpoint (snapshot + truncate), then
	// restore the stale log bytes over the truncated file — precisely the
	// on-disk state a crash between the two steps leaves behind.
	logPath, _ := wal.Paths(dir)
	staleLog, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := totals(t, st)
	st.Stop()
	if err := os.WriteFile(logPath, staleLog, 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := buildApp(t, Config{Dir: dir})
	if err := st2.Start(); err != nil {
		t.Fatal(err)
	}
	defer st2.Stop()
	got := totals(t, st2)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("stale log records double-applied: %v want %v", got, want)
	}
}

// TestRecoveryWithCorruptSnapshotFailsLoudly ensures a torn snapshot is an
// error, not silent data loss.
func TestRecoveryWithCorruptSnapshotFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	st := buildApp(t, Config{Dir: dir})
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	ingestN(t, st, 4)
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st.Stop()
	_, snapPath := wal.Paths(dir)
	data, _ := os.ReadFile(snapPath)
	data[len(data)/3] ^= 0xFF
	os.WriteFile(snapPath, data, 0o644)

	st2 := buildApp(t, Config{Dir: dir})
	if err := st2.Start(); err == nil {
		st2.Stop()
		t.Fatal("corrupt snapshot accepted silently")
	}
}

// TestRepeatedCrashRecoverCycles runs several crash/recover/extend rounds
// and verifies state converges to a single reference run.
func TestRepeatedCrashRecoverCycles(t *testing.T) {
	dir := t.TempDir()
	const rounds = 5
	for round := 0; round < rounds; round++ {
		st := buildApp(t, Config{Dir: dir})
		if err := st.Start(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		ingestN(t, st, 4)
		if round == 2 {
			if err := st.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		st.Stop()
	}
	// Reference: the identical per-round feeds in one uninterrupted run.
	ref := buildApp(t, Config{})
	if err := ref.Start(); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < rounds; round++ {
		ingestN(t, ref, 4)
	}
	want := totals(t, ref)
	ref.Stop()

	st := buildApp(t, Config{Dir: dir})
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	got := totals(t, st)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("after 5 crash cycles: %v want %v", got, want)
	}
}

// TestEmptyDurabilityDirStartsClean covers first boot with durability on.
func TestEmptyDurabilityDirStartsClean(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "fresh")
	st := buildApp(t, Config{Dir: dir})
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	if err := st.Ingest("events", types.Row{types.NewInt(1), types.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	st.FlushBatches()
	st.Drain()
	if len(totals(t, st)) == 0 {
		t.Fatal("fresh durable engine lost work")
	}
}

// TestAdHocExec covers the public ad-hoc write path.
func TestAdHocExec(t *testing.T) {
	st := buildApp(t, Config{})
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	if _, err := st.Exec("INSERT INTO totals (k, n) VALUES (9, 99)"); err != nil {
		t.Fatal(err)
	}
	res, err := st.Query("SELECT n FROM totals WHERE k = 9")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Int() != 99 {
		t.Fatalf("exec/query: %v %v", res, err)
	}
	// A failing ad-hoc write rolls back cleanly.
	if _, err := st.Exec("INSERT INTO totals (k, n) VALUES (9, 1)"); err == nil {
		t.Fatal("duplicate pk accepted")
	}
	res, _ = st.Query("SELECT COUNT(*) FROM totals WHERE k = 9")
	if res.Rows[0][0].Int() != 1 {
		t.Fatal("failed exec left partial state")
	}
}
