package core

import (
	"testing"
)

// Fan-out read-path benchmarks: pin every partition, run the leg on the
// fan-out workers, merge. The allocs/op these report before and after the
// scratch-pool change are recorded under E14 in EXPERIMENTS.md.

func BenchmarkFanoutScanQuery(b *testing.B) {
	st := buildPartApp(b, Config{Partitions: 4})
	if err := st.Start(); err != nil {
		b.Fatal(err)
	}
	defer st.Stop()
	ingestKeys(b, st, 64, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := st.Query("SELECT k, n FROM totals WHERE n >= 0")
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 64 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

func BenchmarkFanoutAggQuery(b *testing.B) {
	st := buildPartApp(b, Config{Partitions: 4})
	if err := st.Start(); err != nil {
		b.Fatal(err)
	}
	defer st.Stop()
	ingestKeys(b, st, 64, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := st.Query("SELECT k, SUM(n) FROM totals GROUP BY k")
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 64 {
			b.Fatalf("groups = %d", len(res.Rows))
		}
	}
}
