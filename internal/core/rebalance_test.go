package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/pe"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/wal"
)

// checkCanonical asserts every partitioned row sits on its canonical
// owner under the current slot table (which Rebalance converges to the
// canonical assignment).
func checkCanonical(t *testing.T, st *Store) {
	t.Helper()
	slots := st.slots.Load()
	for _, p := range st.partList() {
		for _, rel := range migratedRels(p.cat) {
			col := rel.PartCol
			rel.Table.Scan(func(_ storage.RowID, row types.Row) bool {
				if owner := slots.Partition(row[col]); owner != p.idx {
					t.Errorf("%s row %v on partition %d, owner is %d", rel.Name, row, p.idx, owner)
				}
				return true
			})
		}
	}
}

func TestRebalanceLive(t *testing.T) {
	st := buildPartApp(t, Config{Partitions: 2})
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	ingestKeys(t, st, 16, 2)
	want := totals(t, st)

	if err := st.Rebalance(4); err != nil {
		t.Fatal(err)
	}
	if st.NumPartitions() != 4 {
		t.Fatalf("NumPartitions = %d", st.NumPartitions())
	}
	if got := totals(t, st); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("post-rebalance totals = %v want %v", got, want)
	}
	checkCanonical(t, st)
	// Keyed calls route to the new owners.
	for k := 0; k < 16; k++ {
		res, err := st.Call("bump", types.NewInt(int64(k)))
		if err != nil {
			t.Fatal(err)
		}
		if res.RowsAffected != 1 {
			t.Fatalf("bump(%d) affected %d rows", k, res.RowsAffected)
		}
	}
	// New ingest lands on the grown store, including keys owned by the
	// added partitions.
	ingestKeys(t, st, 16, 1)
	got := totals(t, st)
	for k := int64(0); k < 16; k++ {
		if got[k] != want[k]+100+2 {
			t.Fatalf("key %d total = %d want %d", k, got[k], want[k]+100+2)
		}
	}
	if n := st.Metrics().Snapshot().Rebalances; n != 1 {
		t.Fatalf("Rebalances = %d", n)
	}
}

func TestRebalanceReplicatedAndNoop(t *testing.T) {
	st := buildPartApp(t, Config{Partitions: 2})
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	if _, err := st.Exec("INSERT INTO ref (id, v) VALUES (1, 10)"); err != nil {
		t.Fatal(err)
	}
	if err := st.Rebalance(3); err != nil {
		t.Fatal(err)
	}
	// Replicated tables were seeded onto the new partition.
	for i := 0; i < 3; i++ {
		if n := st.partList()[i].cat.Relation("ref").Table.Count(); n != 1 {
			t.Fatalf("partition %d ref rows = %d", i, n)
		}
	}
	q, err := st.Query("SELECT COUNT(*) FROM ref")
	if err != nil {
		t.Fatal(err)
	}
	if q.Rows[0][0].Int() != 1 {
		t.Fatalf("replicated count = %v", q.Rows)
	}
	// Same-size rebalance is a no-op, shrinking is refused.
	if err := st.Rebalance(3); err != nil {
		t.Fatal(err)
	}
	if err := st.Rebalance(2); err == nil ||
		!strings.Contains(err.Error(), "shrinking the partition count is not supported") {
		t.Fatalf("shrink err = %v", err)
	}
}

func TestRebalanceDurableSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	st := buildPartApp(t, Config{Dir: dir, Partitions: 2, Sync: wal.SyncEveryRecord})
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	ingestKeys(t, st, 12, 2)
	if err := st.Rebalance(4); err != nil {
		t.Fatal(err)
	}
	ingestKeys(t, st, 12, 1)
	want := totals(t, st)
	if err := st.Stop(); err != nil {
		t.Fatal(err)
	}

	st2 := buildPartApp(t, Config{Dir: dir, Partitions: 4, Sync: wal.SyncEveryRecord})
	if err := st2.Start(); err != nil {
		t.Fatal(err)
	}
	defer st2.Stop()
	if got := totals(t, st2); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("recovered totals = %v want %v", got, want)
	}
	checkCanonical(t, st2)
}

func TestRebalanceCrashBetweenCopiedAndCommit(t *testing.T) {
	dir := t.TempDir()
	st := buildPartApp(t, Config{Dir: dir, Partitions: 2, Sync: wal.SyncEveryRecord})
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	ingestKeys(t, st, 12, 2)
	want := totals(t, st)

	// Abort the first migration after its COPIED record is durable: the
	// coordinator log keeps a BEGIN/COPIED pair with no COMMIT, the exact
	// state a crash in that window leaves behind.
	testHookAfterCopied = func(slot int) error { return fmt.Errorf("injected crash after COPIED") }
	err := st.Rebalance(4)
	testHookAfterCopied = nil
	if err == nil || !strings.Contains(err.Error(), "injected crash") {
		t.Fatalf("rebalance err = %v", err)
	}
	if err := st.Stop(); err != nil {
		t.Fatal(err)
	}

	// The growth intent was stamped, so the old count is refused...
	stOld := buildPartApp(t, Config{Dir: dir, Partitions: 2, Sync: wal.SyncEveryRecord})
	if err := stOld.Start(); err == nil ||
		!strings.Contains(err.Error(), "shrinking the partition count is not supported") {
		stOld.Stop()
		t.Fatalf("old-count err = %v", err)
	}
	// ...and reopening with the target count finishes the redistribution.
	st2 := buildPartApp(t, Config{Dir: dir, Partitions: 4, Sync: wal.SyncEveryRecord})
	if err := st2.Start(); err != nil {
		t.Fatal(err)
	}
	defer st2.Stop()
	if got := totals(t, st2); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("recovered totals = %v want %v", got, want)
	}
	checkCanonical(t, st2)
	for k := 0; k < 12; k++ {
		if res, err := st2.Call("bump", types.NewInt(int64(k))); err != nil || res.RowsAffected != 1 {
			t.Fatalf("bump(%d) = %v, %v", k, res, err)
		}
	}
}

// TestNullPartitionKeyDefault pins the routing contract for NULL partition
// keys: a NULL with a column DEFAULT routes (and is stored) as the default,
// so the keyed read path finds the row without a fan-out; a NULL without a
// default is stored as NULL on a deterministic owner and survives rebalance.
func TestNullPartitionKeyDefault(t *testing.T) {
	st := buildPartApp(t, Config{Partitions: 2})
	if err := st.ExecScript(`
		CREATE TABLE nd (k INT PRIMARY KEY DEFAULT 7, v BIGINT) PARTITION BY k;
		CREATE TABLE nn (k INT, v BIGINT) PARTITION BY k;
	`); err != nil {
		t.Fatal(err)
	}
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	defer st.Stop()

	if _, err := st.Exec("INSERT INTO nd (k, v) VALUES (NULL, 1)"); err != nil {
		t.Fatal(err)
	}
	// The defaulted key must live on hash(7)'s owner and be visible to the
	// single-partition keyed read.
	q, err := st.Query("SELECT v FROM nd WHERE k = 7")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != 1 || q.Rows[0][0].Int() != 1 {
		t.Fatalf("keyed read of defaulted NULL key = %v", q.Rows)
	}
	owner := st.partitionFor(types.NewInt(7))
	if n := st.partList()[owner].cat.Relation("nd").Table.Count(); n != 1 {
		t.Fatalf("partition %d nd rows = %d", owner, n)
	}

	// No default: the NULL key is kept as NULL and routes deterministically.
	if _, err := st.Exec("INSERT INTO nn (k, v) VALUES (NULL, 2)"); err != nil {
		t.Fatal(err)
	}
	q, err = st.Query("SELECT v FROM nn")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != 1 || q.Rows[0][0].Int() != 2 {
		t.Fatalf("fan-out read of NULL key = %v", q.Rows)
	}
	nullOwner := st.partitionFor(types.Null)
	if n := st.partList()[nullOwner].cat.Relation("nn").Table.Count(); n != 1 {
		t.Fatalf("partition %d nn rows = %d", nullOwner, n)
	}

	// Both rows survive a rebalance and stay on their canonical owners.
	if err := st.Rebalance(4); err != nil {
		t.Fatal(err)
	}
	q, err = st.Query("SELECT v FROM nd WHERE k = 7")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != 1 {
		t.Fatalf("post-rebalance keyed read = %v", q.Rows)
	}
	checkCanonical(t, st)
}

// TestRebalanceUnderConcurrentTraffic hammers a migrating store: ingest,
// keyed calls, fan-out queries, and a multi-partition transaction mix run
// while the store grows 2 -> 4. Run with -race.
func TestRebalanceUnderConcurrentTraffic(t *testing.T) {
	st := buildPartApp(t, Config{Partitions: 2})
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	ingestKeys(t, st, 32, 1)

	const feeders = 4
	const perFeeder = 200
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, feeders+2)
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			for i := 0; i < perFeeder; i++ {
				k := int64((f*perFeeder + i) % 32)
				if err := st.Ingest("events", types.Row{types.NewInt(k), types.NewInt(1)}); err != nil {
					errCh <- err
					return
				}
			}
		}(f)
	}
	wg.Add(1)
	go func() { // fan-out reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := st.Query("SELECT COUNT(*), SUM(n) FROM totals"); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // cross-partition writer
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			err := st.MultiPartitionTxn(func(tx *MPTxn) error {
				_, err := tx.ExecAll("UPDATE ref SET v = v + 1 WHERE id = 1")
				return err
			})
			if err != nil {
				errCh <- err
				return
			}
		}
	}()
	if _, err := st.Exec("INSERT INTO ref (id, v) VALUES (1, 0)"); err != nil {
		t.Fatal(err)
	}

	if err := st.Rebalance(4); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	st.FlushBatches()
	st.Drain()

	got := totals(t, st)
	// Every ingested tuple doubled and applied exactly once: 32 keys seeded
	// once, then feeders*perFeeder spread round-robin over the 32 keys.
	wantPer := int64(2 * (1 + feeders*perFeeder/32))
	for k := int64(0); k < 32; k++ {
		if got[k] != wantPer {
			t.Fatalf("key %d total = %d want %d (lost or duplicated work)", k, got[k], wantPer)
		}
	}
	checkCanonical(t, st)
}

// registerDel adds a keyed delete procedure (mirrors bump's routing) so a
// durable test can kill a totals row through the logged procedure path.
func registerDel(t *testing.T, st *Store) {
	t.Helper()
	if err := st.RegisterProcedure(&pe.Procedure{
		Name:           "del",
		ReadSet:        []string{"totals"},
		WriteSet:       []string{"totals"},
		PartitionParam: 1,
		Handler: func(ctx *pe.ProcCtx) error {
			_, err := ctx.Exec("DELETE FROM totals WHERE k = ?", ctx.Params[0])
			return err
		},
	}); err != nil {
		t.Fatal(err)
	}
}

// TestRebalanceMigrateBackRestart covers slots whose ownership history
// returns to an earlier owner (e.g. 0 -> 1 -> 0 across 2 -> 3 -> 4): the
// returning partition's own log already re-creates the slot's rows during
// replay, so the slot-move leg must supersede those stale local copies —
// including keys deleted while the slot lived elsewhere, which must NOT
// be resurrected by the old insert records.
func TestRebalanceMigrateBackRestart(t *testing.T) {
	// Keys whose slot stays put 2 -> 3 would not exercise anything; pick
	// keys whose slot moves away at 3 partitions and returns at 4.
	var back []int64
	for k := int64(0); len(back) < 2 && k < 10_000; k++ {
		s := catalog.SlotOf(types.NewInt(k))
		if s%4 == s%2 && s%3 != s%2 {
			back = append(back, k)
		}
	}
	if len(back) < 2 {
		t.Fatal("no migrate-back keys found")
	}
	keep, kill := back[0], back[1]

	dir := t.TempDir()
	st := buildPartApp(t, Config{Dir: dir, Partitions: 2, Sync: wal.SyncEveryRecord})
	registerDel(t, st)
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	ingestKeys(t, st, 32, 1)
	for _, k := range []int64{keep, kill} {
		if err := st.Ingest("events", types.Row{types.NewInt(k), types.NewInt(1)}); err != nil {
			t.Fatal(err)
		}
		if err := st.Ingest("events", types.Row{types.NewInt(k), types.NewInt(2)}); err != nil {
			t.Fatal(err)
		}
	}
	st.FlushBatches()
	st.Drain()

	if err := st.Rebalance(3); err != nil {
		t.Fatal(err)
	}
	// While the slot lives on its interim owner: update keep, delete kill —
	// both through logged procedures on the interim partition's segment.
	if _, err := st.Call("bump", types.NewInt(keep)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Call("del", types.NewInt(kill)); err != nil {
		t.Fatal(err)
	}
	if err := st.Rebalance(4); err != nil {
		t.Fatal(err)
	}
	want := totals(t, st)
	if _, ok := want[kill]; ok {
		t.Fatalf("key %d still present before restart", kill)
	}
	if err := st.Stop(); err != nil {
		t.Fatal(err)
	}

	st2 := buildPartApp(t, Config{Dir: dir, Partitions: 4, Sync: wal.SyncEveryRecord})
	registerDel(t, st2)
	if err := st2.Start(); err != nil {
		t.Fatal(err)
	}
	defer st2.Stop()
	got := totals(t, st2)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("recovered totals = %v want %v", got, want)
	}
	if _, ok := got[kill]; ok {
		t.Fatalf("deleted key %d resurrected by recovery", kill)
	}
	checkCanonical(t, st2)
}
