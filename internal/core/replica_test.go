package core

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pe"
	"repro/internal/types"
	"repro/internal/wal"
)

// kvFollower builds a non-durable replica store with the kv schema and
// attaches it to primary as an in-process follower. The caller owns Run /
// Promote; cleanup stops whichever store ends up running.
func kvFollower(t *testing.T, primary *Store, parts int) *Follower {
	t.Helper()
	fst := buildKV(t, Config{Partitions: parts})
	f, err := NewFollower(fst, StoreSource{St: primary}, FollowerOpts{})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// keySet full-scans kv through fn and returns the key set. Full scans, not
// point lookups: replayed rows live on the partition that logged them, and
// a full scan's fan-out sees every partition regardless of hash placement.
func keySet(t *testing.T, query func(string, ...types.Value) (*pe.Result, error)) map[int64]int {
	t.Helper()
	res, err := query("SELECT k FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	keys := make(map[int64]int, len(res.Rows))
	for _, r := range res.Rows {
		keys[r[0].Int()]++
	}
	return keys
}

// TestFollowerReplicatesAndServesReads is the basic shipping contract: a
// follower tails the primary's WAL, a session forwarded to the primary's
// LSN vector reads its own writes, lag converges to zero on an idle
// primary, and the replication counters surface through the stats surface.
func TestFollowerReplicatesAndServesReads(t *testing.T) {
	const parts = 2
	st := buildKV(t, gcTestConfig(t.TempDir(), parts))
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	f := kvFollower(t, st, parts)
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	defer f.Store().Stop()

	const n = 60
	for k := int64(0); k < n; k++ {
		if _, err := st.Call("put", types.NewInt(k), types.NewInt(k*10)); err != nil {
			t.Fatal(err)
		}
	}
	rs := f.Session()
	rs.Forward(st.LSNVector())
	res, err := rs.Query("SELECT COUNT(*), SUM(v) FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	wantSum := int64(n*(n-1)/2) * 10
	if res.Rows[0][0].Int() != n || res.Rows[0][1].Int() != wantSum {
		t.Fatalf("follower aggregate = %v, want [%d %d]", res.Rows, n, wantSum)
	}
	keys := keySet(t, rs.Query)
	for k := int64(0); k < n; k++ {
		if keys[k] != 1 {
			t.Fatalf("key %d appears %d times on the follower", k, keys[k])
		}
	}

	// Read-your-writes across a fresh write: forward the vector taken after
	// the ack and the row must be visible.
	if _, err := st.Call("put", types.NewInt(1000), types.NewInt(7)); err != nil {
		t.Fatal(err)
	}
	rs.Forward(st.LSNVector())
	if keys := keySet(t, rs.Query); keys[1000] != 1 {
		t.Fatalf("read-your-writes: key 1000 missing after Forward (keys=%d)", len(keys))
	}

	// Writes are rejected on the replica.
	if _, err := f.Query("INSERT INTO kv VALUES (9, 9)"); err == nil ||
		!strings.Contains(err.Error(), "read-only") {
		t.Fatalf("replica write err = %v", err)
	}

	// Idle primary: lag must converge to zero.
	deadline := time.Now().Add(5 * time.Second)
	for f.Lag() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("replication lag stuck at %d", f.Lag())
		}
		time.Sleep(time.Millisecond)
	}

	// The counters surface through the stats rows (sstorecli stats).
	stats := f.Store().StatsResult()
	got := map[string]int64{}
	for _, r := range stats.Rows {
		if v, err := strconv.ParseInt(r[1].Str(), 10, 64); err == nil {
			got[r[0].Str()] = v
		}
	}
	if got["repl_records_applied"] < n {
		t.Fatalf("repl_records_applied = %d, want >= %d", got["repl_records_applied"], n)
	}
	if _, ok := got["repl_lag"]; !ok {
		t.Fatal("repl_lag missing from stats")
	}
	if got["follower_reads"] == 0 {
		t.Fatal("follower_reads not counted")
	}
}

// TestFollowerAppliesMultiPartitionWrites ships logged 2PC work
// (MultiPartitionTxn — the command-logged coordinated path): each leg's
// partition record is a PREPARE whose decision travels on the coordinator
// stream, so the follower must stall every leg until its decision arrives
// and then apply it. The session read sees both legs of every transaction.
func TestFollowerAppliesMultiPartitionWrites(t *testing.T) {
	const parts = 2
	st := buildKV(t, gcTestConfig(t.TempDir(), parts))
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	f := kvFollower(t, st, parts)
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	defer f.Store().Stop()

	// Each transaction writes one row to each partition; single-partition
	// puts interleave so the decided legs apply amid ordinary records.
	total := 0
	for base := int64(0); base < 80; base += 2 {
		base := base
		if err := st.MultiPartitionTxn(func(tx *MPTxn) error {
			if _, err := tx.Exec(0, "INSERT INTO kv VALUES (?, 1)", types.NewInt(base)); err != nil {
				return err
			}
			_, err := tx.Exec(1, "INSERT INTO kv VALUES (?, 1)", types.NewInt(base+1))
			return err
		}); err != nil {
			t.Fatal(err)
		}
		total += 2
		if _, err := st.Call("put", types.NewInt(1000+base), types.NewInt(1)); err != nil {
			t.Fatal(err)
		}
		total++
	}
	rs := f.Session()
	rs.Forward(st.LSNVector())
	res, err := rs.Query("SELECT COUNT(*), SUM(v) FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != int64(total) || res.Rows[0][1].Int() != int64(total) {
		t.Fatalf("after coordinated writes: %v, want [%d %d]", res.Rows, total, total)
	}
}

// TestFollowerStallsInDoubtPrepare is the correctness heart of shipping
// under pipelined commit: slots release before markers append, so records
// can follow an undecided PREPARE in a partition segment. The follower must
// stall that stream — never inferring an abort — while still applying other
// streams; only promotion presumes the in-doubt leg aborted, and the
// stalled successors (whose decisions did arrive) apply then.
func TestFollowerStallsInDoubtPrepare(t *testing.T) {
	const parts = 2
	dir := t.TempDir()
	st := buildKV(t, gcTestConfig(dir, parts))
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 10; k++ {
		if _, err := st.Call("put", types.NewInt(k), types.NewInt(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Stop(); err != nil {
		t.Fatal(err)
	}

	// Hand-crafted crash state. Partition 0: an in-doubt PREPARE (txn 99,
	// key 777 — no decision anywhere) followed by a decided PREPARE (txn
	// 101, key 887). Partition 1: txn 101's other leg (key 888). The
	// coordinator log holds the commit decision for 101 only.
	logPath0, _ := wal.PartitionPaths(dir, 0)
	logPath1, _ := wal.PartitionPaths(dir, 1)
	appendRecords(t, logPath0,
		&pe.LogRecord{Kind: pe.RecPrepare, MPTxnID: 99, Ops: []pe.LoggedOp{putOp(777, 777)}},
		&pe.LogRecord{Kind: pe.RecPrepare, MPTxnID: 101, Ops: []pe.LoggedOp{putOp(887, 887)}})
	appendRecords(t, logPath1,
		&pe.LogRecord{Kind: pe.RecPrepare, MPTxnID: 101, Ops: []pe.LoggedOp{putOp(888, 888)}})
	appendRecords(t, wal.CoordPath(dir),
		&pe.LogRecord{Kind: pe.RecDecide, MPTxnID: 101, Commit: true})

	f := kvFollower(t, st, parts)
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}

	// Partition 1's decided leg applies (proving the loop is live) while
	// partition 0 stays stalled behind txn 99.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if keys := keySet(t, f.Query); keys[888] == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("decided leg on partition 1 never applied")
		}
		time.Sleep(time.Millisecond)
	}
	keys := keySet(t, f.Query)
	if keys[777] != 0 {
		t.Fatal("in-doubt prepare was applied by a running follower")
	}
	if keys[887] != 0 {
		t.Fatal("follower applied a record past an in-doubt prepare (inferred an abort it must not)")
	}

	// Promotion: txn 99 is presumed aborted, txn 101's stalled leg applies.
	promoted, err := f.Promote()
	if err != nil {
		t.Fatal(err)
	}
	defer promoted.Stop()
	keys = keySet(t, promoted.Query)
	if keys[777] != 0 {
		t.Fatal("presumed-abort leg resurrected at promotion")
	}
	if keys[887] != 1 || keys[888] != 1 {
		t.Fatalf("decided txn 101 incomplete after promotion: 887=%d 888=%d", keys[887], keys[888])
	}
	for k := int64(0); k < 10; k++ {
		if keys[k] != 1 {
			t.Fatalf("acked key %d lost across promotion", k)
		}
	}
}

// TestFailoverPromoteNoAckedWriteLost kills the primary mid-burst and
// promotes the follower. The oracle is the ISSUE's acceptance bar: every
// write acknowledged to a client survives on the promoted store, nothing
// appears that was never submitted, nothing is applied twice — and the
// promoted store accepts new writes.
func TestFailoverPromoteNoAckedWriteLost(t *testing.T) {
	const parts = 2
	const total = 600
	const writers = 4
	st := buildKV(t, gcTestConfig(t.TempDir(), parts))
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	f := kvFollower(t, st, parts)
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}

	var acked [total]atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := w; k < total; k += writers {
				if _, err := st.Call("put", types.NewInt(int64(k)), types.NewInt(int64(k))); err != nil {
					return // the primary died under us; unacked writes may vanish
				}
				acked[k].Store(true)
			}
		}(w)
	}
	// The crash, mid-burst.
	crash := make(chan struct{})
	go func() {
		defer close(crash)
		time.Sleep(3 * time.Millisecond)
		_ = st.Stop()
	}()
	wg.Wait()
	<-crash

	promoted, err := f.Promote()
	if err != nil {
		t.Fatal(err)
	}
	defer promoted.Stop()
	keys := keySet(t, promoted.Query)
	nAcked := 0
	for k := 0; k < total; k++ {
		if acked[k].Load() {
			nAcked++
			if keys[int64(k)] == 0 {
				t.Fatalf("acked key %d lost across failover", k)
			}
		}
	}
	for k, n := range keys {
		if k < 0 || k >= total {
			t.Fatalf("phantom key %d on promoted store", k)
		}
		if n != 1 {
			t.Fatalf("key %d applied %d times", k, n)
		}
	}
	t.Logf("failover oracle: %d acked, %d present", nAcked, len(keys))

	// The promoted store is live for both writes and reads.
	if _, err := promoted.Call("put", types.NewInt(int64(total)), types.NewInt(1)); err != nil {
		t.Fatalf("promoted store rejected a write: %v", err)
	}
	if keys := keySet(t, promoted.Query); keys[total] != 1 {
		t.Fatal("write to promoted store not visible")
	}
	// The follower surface is closed after promotion.
	if _, err := f.Query("SELECT COUNT(*) FROM kv"); err == nil ||
		!strings.Contains(err.Error(), "promoted") {
		t.Fatalf("post-promotion follower query err = %v", err)
	}
}

// TestFollowerReadsVsWriterVsPromotionHammer races session reads against a
// primary writer and then a promotion, under -race in CI: reads must only
// ever succeed or fail with the promotion notice — never a torn result or
// a data race.
func TestFollowerReadsVsWriterVsPromotionHammer(t *testing.T) {
	const parts = 2
	st := buildKV(t, gcTestConfig(t.TempDir(), parts))
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	f := kvFollower(t, st, parts)
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	for r := 0; r < 4; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			rs := f.Session()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := rs.Query("SELECT COUNT(*), SUM(v) FROM kv")
				if err != nil {
					if strings.Contains(err.Error(), "promoted") {
						return
					}
					t.Errorf("replica read: %v", err)
					return
				}
				// v mirrors k, so the pair must always be consistent.
				if res.Rows[0][0].Int() > 0 && !res.Rows[0][1].IsNull() &&
					res.Rows[0][1].Int() != res.Rows[0][0].Int() {
					t.Errorf("torn replica read: %v", res.Rows)
					return
				}
			}
		}()
	}
	for k := int64(0); k < 300; k++ {
		if _, err := st.Call("put", types.NewInt(k), types.NewInt(1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Stop(); err != nil {
		t.Fatal(err)
	}
	promoted, err := f.Promote()
	if err != nil {
		t.Fatal(err)
	}
	close(stop)
	readerWG.Wait()
	defer promoted.Stop()
	if keys := keySet(t, promoted.Query); len(keys) != 300 {
		t.Fatalf("promoted store has %d keys, want 300", len(keys))
	}
}

// TestFollowerRejectsMisconfiguration pins the constructor's guardrails and
// the session-vector shape check.
func TestFollowerRejectsMisconfiguration(t *testing.T) {
	const parts = 2
	st := buildKV(t, gcTestConfig(t.TempDir(), parts))
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	defer st.Stop()

	durable := buildKV(t, gcTestConfig(t.TempDir(), parts))
	if _, err := NewFollower(durable, StoreSource{St: st}, FollowerOpts{}); err == nil ||
		!strings.Contains(err.Error(), "non-durable") {
		t.Fatalf("durable follower err = %v", err)
	}
	started := buildKV(t, Config{Partitions: parts})
	if err := started.Start(); err != nil {
		t.Fatal(err)
	}
	defer started.Stop()
	if _, err := NewFollower(started, StoreSource{St: st}, FollowerOpts{}); err == nil ||
		!strings.Contains(err.Error(), "must not be started") {
		t.Fatalf("started follower err = %v", err)
	}
	narrow := buildKV(t, Config{Partitions: parts + 1})
	if _, err := NewFollower(narrow, StoreSource{St: st}, FollowerOpts{}); err == nil ||
		!strings.Contains(err.Error(), "counts must match") {
		t.Fatalf("partition-mismatch err = %v", err)
	}

	// Replication needs a durable primary.
	volatile := buildKV(t, Config{Partitions: parts})
	if _, err := volatile.ReplicationBatch(0, 0, 0); err == nil ||
		!strings.Contains(err.Error(), "durable primary") {
		t.Fatalf("volatile primary fetch err = %v", err)
	}

	// An over-wide session vector is rejected rather than hanging.
	f := kvFollower(t, st, parts)
	rs := f.Session()
	rs.Forward(make([]uint64, parts+3))
	if _, err := rs.Query("SELECT COUNT(*) FROM kv"); err == nil ||
		!strings.Contains(err.Error(), "LSN vector") {
		t.Fatalf("wide vector err = %v", err)
	}
}
