package core

import (
	"testing"

	"repro/internal/types"
)

// TestPauseSurvivesReopen is the durable-pause contract: a graph paused
// before a crash must come back paused — reopening must not silently
// resume ingesting — and a resume before the crash must come back running.
func TestPauseSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := gcTestConfig(dir, 1)
	st := dfStore(t, cfg)
	if err := st.Deploy(pipelineDF()); err != nil {
		t.Fatal(err)
	}
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := st.Ingest("feed", types.Row{types.NewInt(int64(i)), types.NewInt(1)}); err != nil {
			t.Fatal(err)
		}
	}
	st.Drain()
	if err := st.PauseDataflow("pipeline"); err != nil {
		t.Fatal(err)
	}
	if err := st.Stop(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the graph must recover paused.
	st2 := dfStore(t, cfg)
	if err := st2.Deploy(pipelineDF()); err != nil {
		t.Fatal(err)
	}
	if err := st2.Start(); err != nil {
		t.Fatal(err)
	}
	show, err := st2.Query("SHOW DATAFLOWS")
	if err != nil {
		t.Fatal(err)
	}
	if state := show.Rows[0][1].Str(); state != "paused" {
		t.Fatalf("reopened state = %q, want paused (pause lost at recovery)", state)
	}
	// Ingest queues without executing while the recovered pause holds.
	res, err := st2.Query("SELECT COUNT(*) FROM sink")
	if err != nil {
		t.Fatal(err)
	}
	frozen := res.Rows[0][0].Int()
	for i := 10; i < 14; i++ {
		if err := st2.Ingest("feed", types.Row{types.NewInt(int64(i)), types.NewInt(1)}); err != nil {
			t.Fatal(err)
		}
	}
	st2.Drain()
	res, err = st2.Query("SELECT COUNT(*) FROM sink")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != frozen {
		t.Fatalf("recovered pause did not gate ingest: %d rows, want %d", got, frozen)
	}
	// Resume dispatches the queued backlog (two full batches of 2).
	if err := st2.ResumeDataflow("pipeline"); err != nil {
		t.Fatal(err)
	}
	st2.FlushBatches()
	st2.Drain()
	res, err = st2.Query("SELECT COUNT(*) FROM sink")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != frozen+4 {
		t.Fatalf("post-resume sink rows = %d, want %d", got, frozen+4)
	}
	if err := st2.Stop(); err != nil {
		t.Fatal(err)
	}

	// The resume was durable too: the next reopen comes back running.
	st3 := dfStore(t, cfg)
	if err := st3.Deploy(pipelineDF()); err != nil {
		t.Fatal(err)
	}
	if err := st3.Start(); err != nil {
		t.Fatal(err)
	}
	defer st3.Stop()
	show, err = st3.Query("SHOW DATAFLOWS")
	if err != nil {
		t.Fatal(err)
	}
	if state := show.Rows[0][1].Str(); state != "running" {
		t.Fatalf("state after durable resume = %q, want running", state)
	}
}
