package core

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/pe"
	"repro/internal/types"
	"repro/internal/wal"
)

// This file is the cross-partition transaction coordinator: a lightweight
// two-phase-commit protocol over the partition engines' serial-slot
// barrier (pe.MPSession). It is what lifts §4.3's workflow-locality limit:
// a statement batch (or an application handler) that touches several
// partitions executes as ONE atomic transaction instead of being rejected
// by the router.
//
// Protocol and locking:
//
//   - Multi-partition transactions are serialized store-wide (mpMu, held
//     exclusively) and mutually excluded with all-partition barriers such
//     as Checkpoint (exclMu) — two transactions enlisting partitions in
//     different orders, or a transaction racing a checkpoint's barrier,
//     would otherwise deadlock the serial workers. Single-partition work
//     keeps flowing on partitions the transaction has not enlisted.
//   - Fan-out reads never take mpMu: they pin per-partition MVCC snapshot
//     sequences under seqMu, whose exclusive side covers only the commit
//     delivery below — that window is what makes an ad-hoc distributed
//     query see a coordinated transaction entirely or not at all
//     (all-or-nothing visibility) while running concurrently with the
//     rest of the protocol. Single-partition requests are serialized per
//     partition by the worker itself.
//   - Fragment phase: the handler executes reads and writes on any
//     partition through MPTxn; the first fragment to touch a partition
//     enlists it, parking that partition's worker on the barrier until the
//     decision.
//   - Prepare phase: every enlisted partition forces a PREPARE record
//     (its leg's re-executable writes) and votes. Any fragment error, vote
//     error, or handler error aborts every leg.
//   - Decision: the coordinator forces a DECIDE record to the coordinator
//     log (coord.log) — the classic 2PC commit point — then delivers the
//     decision to every leg and waits for the legs' acknowledgements,
//     which resolve through the group-commit pipeline.
//
// Recovery (core.go) scans coord.log first: a logged PREPARE whose
// transaction id has a durable commit decision is re-applied; one without
// is presumed aborted and dropped.

// MPTxn is the handle a coordinated transaction's handler works through.
// Methods route fragments to partition legs; they may be called from the
// handler goroutine or — for QueryAll — internal fan-out helpers, and are
// safe for that concurrent use. Do not call Store query/exec methods from
// inside the handler (the coordinator holds the store's coordination
// locks); use the MPTxn methods instead.
type MPTxn struct {
	s      *Store
	id     uint64
	logged bool
	// parts is the partition list captured under exclMu — stable for the
	// transaction's lifetime (a rebalance's cutover barrier cannot run
	// while the coordinator holds exclMu).
	parts []*partition

	mu    sync.Mutex
	sess  []*pe.MPSession
	wrote bool
	err   error // sticky: poisons the transaction, forcing abort
}

// NumPartitions returns the store's partition count.
func (tx *MPTxn) NumPartitions() int { return len(tx.parts) }

// PartitionFor maps a partition-key value to its owning partition per the
// slot table, which is likewise stable while the transaction runs.
func (tx *MPTxn) PartitionFor(v types.Value) int { return tx.s.slots.Load().Partition(v) }

// session lazily enlists partition part, parking its worker on the 2PC
// barrier.
func (tx *MPTxn) session(part int) (*pe.MPSession, error) {
	if part < 0 || part >= len(tx.parts) {
		return nil, fmt.Errorf("core: mp txn: no partition %d", part)
	}
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.err != nil {
		return nil, tx.err
	}
	if tx.sess[part] != nil {
		return tx.sess[part], nil
	}
	sess, err := tx.parts[part].pe.EnlistMP(tx.id, tx.logged)
	if err != nil {
		tx.err = err
		return nil, err
	}
	tx.sess[part] = sess
	return sess, nil
}

// poison records a write-fragment failure. A failed write may have been
// statement-level rolled back in memory, but it was never recorded in the
// leg's PREPARE ops — committing anyway could diverge recovered state from
// memory, so the transaction is forced to abort even if the handler
// swallows the error.
func (tx *MPTxn) poison(err error) {
	tx.mu.Lock()
	if tx.err == nil {
		tx.err = err
	}
	tx.mu.Unlock()
}

// Exec runs one write statement on partition part inside the transaction.
// On a logged transaction the statement (with concrete parameters) becomes
// part of the partition's PREPARE record and is re-executed at recovery,
// so it must not depend on hidden nondeterminism.
func (tx *MPTxn) Exec(part int, sqlText string, params ...types.Value) (*pe.Result, error) {
	sess, err := tx.session(part)
	if err != nil {
		return nil, err
	}
	res, err := sess.Exec(sqlText, params...)
	if err != nil {
		tx.poison(err)
		return nil, err
	}
	tx.mu.Lock()
	tx.wrote = true
	tx.mu.Unlock()
	return res, nil
}

// InsertRows inserts a pre-evaluated row batch into a relation on
// partition part (the router's coordinated INSERT legs).
func (tx *MPTxn) InsertRows(part int, table string, rows []types.Row) (*pe.Result, error) {
	sess, err := tx.session(part)
	if err != nil {
		return nil, err
	}
	res, err := sess.InsertRows(table, rows)
	if err != nil {
		tx.poison(err)
		return nil, err
	}
	tx.mu.Lock()
	tx.wrote = true
	tx.mu.Unlock()
	return res, nil
}

// Query runs a read on partition part. The read sees the transaction's own
// uncommitted writes and, because every enlisted worker is parked, a
// stable snapshot of each partition.
func (tx *MPTxn) Query(part int, sqlText string, params ...types.Value) (*pe.Result, error) {
	sess, err := tx.session(part)
	if err != nil {
		return nil, err
	}
	return sess.Query(sqlText, params...)
}

// QueryRow is Query returning at most one row (nil when none matched).
func (tx *MPTxn) QueryRow(part int, sqlText string, params ...types.Value) (types.Row, error) {
	res, err := tx.Query(part, sqlText, params...)
	if err != nil {
		return nil, err
	}
	if len(res.Rows) == 0 {
		return nil, nil
	}
	return res.Rows[0], nil
}

// ExecAll runs the same write on every partition concurrently (enlisting
// them all) — the coordinated form of a broadcast statement. Results come
// back in partition order.
func (tx *MPTxn) ExecAll(sqlText string, params ...types.Value) ([]*pe.Result, error) {
	n := len(tx.parts)
	results := make([]*pe.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = tx.Exec(i, sqlText, params...)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// QueryAll runs the same read on every partition concurrently (enlisting
// them all) and returns the per-partition results in partition order —
// the transactional analogue of the router's query fan-out; the caller
// merges.
func (tx *MPTxn) QueryAll(sqlText string, params ...types.Value) ([]*pe.Result, error) {
	n := len(tx.parts)
	results := make([]*pe.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = tx.Query(i, sqlText, params...)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// MultiPartitionTxn runs fn as one atomic cross-partition transaction:
// every write either commits on all partitions it touched or on none, the
// enlisted partitions' serial slots are held for the duration (no other
// execution interleaves), and on a durable store the writes are command-
// logged through 2PC PREPARE/DECIDE records so recovery resolves them
// atomically too. Returning an error from fn — or any failed write
// fragment — aborts every leg.
//
// Multi-partition transactions serialize store-wide; use them for the
// cross-partition slice of a workload and keep the per-partition fast
// path for everything else. Call only from client goroutines — never from
// inside a stored-procedure handler (the handler's own partition worker
// would be enlisted while it is busy running the handler, a
// self-deadlock).
func (s *Store) MultiPartitionTxn(fn func(tx *MPTxn) error) error {
	return s.runMP(true, fn)
}

// runMP is the coordinator. logged selects command logging for the legs
// (ad-hoc router writes pass false: single-partition ad-hoc Exec is not
// logged either, and the in-memory atomicity guarantees are identical).
func (s *Store) runMP(logged bool, fn func(tx *MPTxn) error) error {
	// exclMu: mutual exclusion with all-partition barriers (Checkpoint);
	// mpMu: serialization with other MP transactions and fan-out readers.
	s.exclMu.Lock()
	defer s.exclMu.Unlock()
	s.mpMu.Lock()
	defer s.mpMu.Unlock()
	s.nextMPTxnID++
	parts := s.partList()
	tx := &MPTxn{s: s, id: s.nextMPTxnID, logged: logged, parts: parts, sess: make([]*pe.MPSession, len(parts))}

	ferr := runMPHandler(fn, tx)
	tx.mu.Lock()
	if ferr == nil {
		ferr = tx.err // a poisoned transaction aborts even if fn returned nil
	}
	tx.mu.Unlock()
	if ferr == nil {
		ferr = tx.prepareAll()
	}
	if ferr == nil && tx.logged && tx.wrote && s.coordLog != nil {
		// The commit point: the decision record is forced before any leg
		// applies. A failed force aborts — nothing has committed yet.
		if err := s.appendDecision(tx.id); err != nil {
			ferr = fmt.Errorf("core: mp decision log: %w", err)
		}
	}
	if ferr != nil {
		tx.finishAll(false)
		s.met.MPAborts.Add(1)
		return ferr
	}
	s.met.MPTxns.Add(1)
	// Commit publication window: every leg publishes its partition's
	// commit sequence during delivery, and holding seqMu exclusively
	// keeps a fan-out reader's snapshot vector from cutting between two
	// legs' publications (all-or-nothing visibility). The lock covers
	// only the in-memory window — the legs' durability acks (a group-
	// commit fsync on durable stores) resolve after it is released, so
	// snapshot readers are never parked behind the disk.
	s.seqMu.Lock()
	derr := tx.deliverAll(true)
	s.seqMu.Unlock()
	return errors.Join(derr, tx.resolveAll())
}

// runMPHandler executes fn, converting panics into aborts so a buggy
// handler cannot leave partition workers parked forever.
func runMPHandler(fn func(tx *MPTxn) error, tx *MPTxn) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("core: mp txn handler panicked: %v", rec)
		}
	}()
	return fn(tx)
}

// prepareAll collects every enlisted partition's vote in parallel (each
// vote is a forced log write; partitions force independently). Any non-nil
// vote is a veto.
func (tx *MPTxn) prepareAll() error {
	var wg sync.WaitGroup
	votes := make([]error, len(tx.sess))
	for i, sess := range tx.sess {
		if sess == nil {
			continue
		}
		wg.Add(1)
		go func(i int, sess *pe.MPSession) {
			defer wg.Done()
			votes[i] = sess.Prepare()
		}(i, sess)
	}
	wg.Wait()
	for i, err := range votes {
		if err != nil {
			return fmt.Errorf("core: mp prepare (partition %d): %w", i, err)
		}
	}
	return nil
}

// deliverAll sends the decision to every enlisted leg in parallel and
// returns once each leg's in-memory state reflects it — the commit
// publications happen inside this call, which the caller covers with the
// publication lock.
func (tx *MPTxn) deliverAll(commit bool) error {
	var wg sync.WaitGroup
	errs := make([]error, len(tx.sess))
	for i, sess := range tx.sess {
		if sess == nil {
			continue
		}
		wg.Add(1)
		go func(i int, sess *pe.MPSession) {
			defer wg.Done()
			errs[i] = sess.Deliver(commit)
		}(i, sess)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// resolveAll waits for every delivered leg's final acknowledgement
// (durability under group commit).
func (tx *MPTxn) resolveAll() error {
	var wg sync.WaitGroup
	errs := make([]error, len(tx.sess))
	for i, sess := range tx.sess {
		if sess == nil {
			continue
		}
		wg.Add(1)
		go func(i int, sess *pe.MPSession) {
			defer wg.Done()
			errs[i] = sess.Resolve()
		}(i, sess)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// finishAll is deliverAll + resolveAll — the abort path, which needs no
// publication lock (rollbacks publish nothing).
func (tx *MPTxn) finishAll(commit bool) error {
	derr := tx.deliverAll(commit)
	return errors.Join(derr, tx.resolveAll())
}

// appendDecision forces a commit decision record into the coordinator log.
func (s *Store) appendDecision(txnID uint64) error {
	payload := wal.EncodeRecord(&pe.LogRecord{Kind: pe.RecDecide, MPTxnID: txnID, Commit: true})
	if _, err := s.coordLog.Append(payload); err != nil {
		return err
	}
	s.met.LogRecords.Add(1)
	s.met.LogBytes.Add(int64(len(payload) + 8))
	return nil
}
