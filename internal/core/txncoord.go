package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/pe"
	"repro/internal/types"
	"repro/internal/wal"
)

// This file is the cross-partition transaction coordinator: a lightweight
// two-phase-commit protocol over the partition engines' serial-slot
// barrier (pe.MPSession). It is what lifts §4.3's workflow-locality limit:
// a statement batch (or an application handler) that touches several
// partitions executes as ONE atomic transaction instead of being rejected
// by the router.
//
// Concurrency: slot enlistment. Each partition carries one 2PC enlistment
// slot (partition.mpSlot); a coordinator acquires the slots of exactly the
// partitions its legs touch and holds each from enlistment until the
// decision is delivered. Transactions over disjoint partition sets
// therefore run fully concurrently; only transactions whose sets overlap
// serialize, and only on the shared partitions. All-partition barriers
// (checkpoint, rebalance cutover) acquire every slot, so "no coordinator
// is mid-protocol" still holds at a barrier.
//
// Deadlock freedom (the lock-ordering argument):
//
//   - A coordinator BLOCKS on a slot only when that slot's index is
//     greater than every slot it already holds — acquisition is ascending.
//   - A slot needed out of order (index below one already held) is taken
//     with TryLock only. On failure the attempt aborts its legs, releases
//     everything, and retries with the accumulated partition set
//     pre-acquired in ascending order (after a few failed attempts it
//     pre-acquires every slot, which trivially succeeds and cannot
//     livelock).
//   - Barriers hold exclMu (one barrier at a time) and acquire ALL slots
//     ascending before parking any worker.
//
//   Every blocking slot wait is therefore by a goroutine whose held slots
//   are all smaller than the one it waits for. A waits-for cycle would
//   need some participant waiting on a slot smaller than one it holds —
//   impossible. Slot holders always make progress: fragment execution and
//   prepare/decide rendezvous complete because each enlisted worker is
//   dedicated to the transaction, and the group-commit daemons resolve
//   force futures independently of any coordination lock.
//
// Pipelined 2PC: no fsync is ever awaited while a slot is held. The
// protocol runs in two stretches —
//
//   - Under the slots (the serial part): the handler executes fragments
//     through the parked workers; prepareAll collects votes as pure
//     rendezvous (each writing leg hands its logged ops back, forcing
//     nothing); the coordinator appends the PREPARE records to the
//     participant logs (append, not fsync), installs the transaction's
//     durability future (mpOutcome) on those partitions, delivers the
//     commit to memory under seqMu, and releases the slots.
//   - Off the slots (the pipelined part): the coordinator waits for the
//     vote appends to become durable, then settles the decision — one
//     writing leg: the leg's own DECIDE marker is the commit record
//     (one-phase commit, no coordinator force); two or more: a decision
//     record in coord.log first, then redundant markers in each
//     participant log — and finally resolves the outcome and acks the
//     client.
//
// Successive transactions on the same partitions therefore overlap their
// durability waits: the next coordinator enlists, executes, and appends
// its own votes while the previous one is still waiting on the disk, so
// PREPARE/DECIDE/commit records pool in the group-commit daemons' ticks
// and share fsyncs (the force batching E11 measures). Nothing kicks the
// daemons early — an immediate per-record sync would shrink batches to
// one record; the tick interval bounds the added ack latency. The
// read-only optimization removes two forces outright: a leg that wrote
// nothing votes yes and releases its worker at PREPARE (no PREPARE
// record, no marker).
//
// The client ack is gated on the full chain — votes durable, decision
// durable, markers durable, and every predecessor outcome this
// transaction may have read resolved (see mpOutcome) — so pipelining
// never acknowledges state that could vanish in a crash; un-acked
// transactions recover by presumed abort.
//
// Admission control (Store.mpAdmit) caps how many coordinators occupy
// the slot-holding stretch at once. Unbounded admission is metastable:
// past a knee, queue depth feeds hold time (every enlistment waits
// behind deeper slot queues) and throughput collapses to a stable bad
// equilibrium. The cap — one token per partition, covering only the
// slot stretch, never the durability tail — keeps slot queues shallow
// while leaving the pipeline depth unbounded.
//
// Commit publication and fan-out reads: fan-out reads never take slots —
// they pin per-partition MVCC snapshot sequences under seqMu, whose
// exclusive side covers only the commit delivery window, so a distributed
// read sees a coordinated transaction entirely or not at all while running
// concurrently with the rest of the protocol.
//
// Recovery (core.go) scans coord.log first: a logged PREPARE whose
// transaction id has a durable commit decision (coordinator record, or the
// partition's own decide marker for one-phase commits) is re-applied; one
// without is presumed aborted and dropped.

// errMPRetry is the internal sentinel a slot-order violation raises: the
// attempt must abort and rerun with the needed slots pre-acquired. It
// poisons the transaction, so it surfaces even through handlers that
// swallow fragment errors.
var errMPRetry = errors.New("core: mp slot order retry")

// mpMaxTryAttempts bounds optimistic retries before the coordinator gives
// up on partial acquisition and pre-acquires every slot (which always
// succeeds — ascending blocking acquisition cannot deadlock and is not
// subject to TryLock failure).
const mpMaxTryAttempts = 3

// mpOutcome is a committed multi-partition transaction's durability future.
// It is installed on every partition the transaction wrote (replacing, and
// chaining to, the previous occupant) before the commit is delivered to
// memory and the slots release. Anything that subsequently commits on one
// of those partitions — a successor coordinated transaction or an ordinary
// single-partition write — may have read this transaction's published but
// not-yet-durable state, so its own client acknowledgement must wait for
// this outcome too (resolved err == nil) or fail loudly (err != nil: the
// store's logs are poisoned and the observed state may not survive a
// restart). This is the speculation chain that lets the slots release
// before the PREPARE forces resolve: pipelined 2PC with acknowledgement
// dependencies instead of slot-held fsyncs.
type mpOutcome struct {
	done  chan struct{} // closed once err is final
	err   error
	preds []*mpOutcome // unresolved predecessors captured at install
}

// installOutcome publishes tx's durability future on every partition that
// got a PREPARE record. Must run before deliverAll(true) — the workers are
// still parked, so nothing can commit against the published state and miss
// the dependency.
func (tx *MPTxn) installOutcome() {
	o := &mpOutcome{done: make(chan struct{})}
	for _, i := range tx.prepParts {
		if prev := tx.parts[i].specTail.Swap(o); prev != nil {
			select {
			case <-prev.done:
				if prev.err != nil {
					o.preds = append(o.preds, prev)
				}
			default:
				o.preds = append(o.preds, prev)
			}
		}
	}
	tx.outcome = o
}

// resolveOutcome finalizes tx's durability future: it waits for every
// captured predecessor (transitively ordering the speculation chain), folds
// their failures into err, resolves the future, and clears the partitions'
// tails when still pointing here. Returns the final error the client sees.
func (tx *MPTxn) resolveOutcome(err error) error {
	o := tx.outcome
	for _, p := range o.preds {
		<-p.done
		if p.err != nil && err == nil {
			err = fmt.Errorf("core: mp txn read state of a predecessor whose durability failed: %w", p.err)
		}
	}
	o.err = err
	close(o.done)
	for _, i := range tx.prepParts {
		tx.parts[i].specTail.CompareAndSwap(o, nil)
	}
	return err
}

// appendPrepares appends every writing leg's PREPARE record (the ops each
// vote handed back) to its partition's log and kicks the log's daemon. The
// appends are not yet durable — the returned futures in voteAcks resolve
// when they are, and waitVotes collects them after the slots release.
// Append order is safe: each leg's worker is still parked, so nothing else
// can put a later record into that partition's log first.
func (tx *MPTxn) appendPrepares() error {
	for i, sess := range tx.sess {
		if sess == nil {
			continue
		}
		ops := sess.LoggedOps()
		if len(ops) == 0 {
			continue
		}
		p := tx.parts[i]
		if p.log == nil {
			continue
		}
		ack, err := p.LogCommitAsync(&pe.LogRecord{Kind: pe.RecPrepare, MPTxnID: tx.id, Ops: ops})
		if err != nil {
			return fmt.Errorf("core: mp prepare append (partition %d): %w", i, err)
		}
		tx.prepParts = append(tx.prepParts, i)
		tx.voteAcks = append(tx.voteAcks, ack)
	}
	return nil
}

// waitVotes blocks until every PREPARE record appended by appendPrepares
// is durable — the classic 2PC forced-vote wait, except the enlistment
// slots were already released: successors execute (and append their own
// votes, which batch into the same daemon fsyncs) while this transaction
// waits only for the disk.
func (tx *MPTxn) waitVotes() error {
	var errs []error
	for k, ack := range tx.voteAcks {
		if err := <-ack; err != nil {
			errs = append(errs, fmt.Errorf("core: mp prepare force (partition %d): %w", tx.prepParts[k], err))
		}
	}
	return errors.Join(errs...)
}

// appendMarkers appends the commit DECIDE marker to every prepared leg's
// partition log and waits for durability. For a one-phase transaction the
// single marker is the commit record itself; for multi-leg transactions
// the markers are appended only after the coordinator's decision record is
// durable, so a surviving marker always witnesses a decided commit (the
// recovery pre-scan relies on that). The markers ride the partition
// daemons' batches alongside successor transactions' votes and commits.
func (tx *MPTxn) appendMarkers() error {
	acks := make([]<-chan error, 0, len(tx.prepParts))
	var errs []error
	for _, i := range tx.prepParts {
		p := tx.parts[i]
		ack, err := p.LogCommitAsync(&pe.LogRecord{Kind: pe.RecDecide, MPTxnID: tx.id, Commit: true})
		if err != nil {
			errs = append(errs, fmt.Errorf("core: mp decide marker append (partition %d): %w", i, err))
			continue
		}
		acks = append(acks, ack)
	}
	for _, ack := range acks {
		if err := <-ack; err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// MPTxn is the handle a coordinated transaction's handler works through.
// Methods route fragments to partition legs; they may be called from the
// handler goroutine or — for QueryAll — internal fan-out helpers, and are
// safe for that concurrent use. Do not call Store query/exec methods from
// inside the handler (the coordinator holds the enlisted partitions'
// slots); use the MPTxn methods instead.
type MPTxn struct {
	s      *Store
	id     uint64
	logged bool
	// parts is the partition list captured at start — stable for the
	// transaction's lifetime (the caller holds routingMu's read side, so a
	// rebalance cutover cannot swap the list mid-transaction).
	parts []*partition

	// prepParts/voteAcks track the writing legs whose PREPARE records were
	// appended (futures resolve when the votes are durable); outcome is the
	// transaction's durability future installed on those partitions for
	// successor-ack chaining. Coordinator-goroutine-only, set post-handler.
	prepParts []int
	voteAcks  []<-chan error
	outcome   *mpOutcome

	mu        sync.Mutex
	sess      []*pe.MPSession
	held      []bool // slot i is acquired
	requested []bool // slot i was needed at least once (retry pre-set)
	maxHeld   int    // highest held slot index (-1 when none)
	wrote     bool
	err       error // sticky: poisons the transaction, forcing abort
}

// NumPartitions returns the store's partition count.
func (tx *MPTxn) NumPartitions() int { return len(tx.parts) }

// PartitionFor maps a partition-key value to its owning partition per the
// slot table, which is likewise stable while the transaction runs.
func (tx *MPTxn) PartitionFor(v types.Value) int { return tx.s.slots.Load().Partition(v) }

// session lazily acquires partition part's enlistment slot and enlists the
// partition, parking its worker on the 2PC barrier. Slots already held
// (pre-acquired on a retry) enlist directly. An in-order slot (above every
// held one) is acquired blocking; an out-of-order slot is TryLock-only —
// failure poisons the transaction with errMPRetry and the coordinator
// reruns the handler with the needed set pre-acquired.
func (tx *MPTxn) session(part int) (*pe.MPSession, error) {
	if part < 0 || part >= len(tx.parts) {
		return nil, fmt.Errorf("core: mp txn: no partition %d", part)
	}
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.err != nil {
		return nil, tx.err
	}
	if tx.sess[part] != nil {
		return tx.sess[part], nil
	}
	tx.requested[part] = true
	if !tx.held[part] {
		if part > tx.maxHeld {
			tx.parts[part].mpSlot.Lock()
		} else if !tx.parts[part].mpSlot.TryLock() {
			tx.err = errMPRetry
			return nil, errMPRetry
		}
		tx.held[part] = true
		if part > tx.maxHeld {
			tx.maxHeld = part
		}
	}
	sess, err := tx.parts[part].pe.EnlistMP(tx.id, tx.logged)
	if err != nil {
		tx.err = err
		return nil, err
	}
	tx.sess[part] = sess
	return sess, nil
}

// Enlist pre-declares the transaction's partition set, acquiring every
// slot before any fragment runs. A handler that knows its access set up
// front — the common case; H-Store-style procedures declare their
// partitions — should call it: lazy per-fragment acquisition blocks on a
// slot while holding others, and under load that hold-and-wait couples
// queue depth to hold time, a metastable convoy.
//
// Enlist avoids hold-and-wait entirely when the transaction holds nothing
// yet: each round blocks on exactly one contended slot while holding no
// others (which can never join a deadlock cycle), then claims the rest
// with TryLock; any failure releases the round and blocks on the slot
// that refused. With slots pre-held (a coordinator retry), a blocking
// acquire is legal only above them (the ascending-order rule), so a
// contended lower slot falls back to the errMPRetry protocol instead.
// Partitions already enlisted are skipped, so Enlist composes with lazy
// sessions on the same transaction.
func (tx *MPTxn) Enlist(parts ...int) error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.err != nil {
		return tx.err
	}
	sorted := append([]int(nil), parts...)
	sort.Ints(sorted)
	want := sorted[:0]
	for i, p := range sorted {
		if p < 0 || p >= len(tx.parts) {
			return fmt.Errorf("core: mp txn: no partition %d", p)
		}
		tx.requested[p] = true
		if !tx.held[p] && (i == 0 || sorted[i-1] != p) {
			want = append(want, p)
		}
	}
	first := 0
	for len(want) > 0 {
		got := want[:0:0]
		release := func() {
			for _, p := range got {
				tx.parts[p].mpSlot.Unlock()
			}
		}
		b := want[first]
		if b > tx.maxHeld {
			tx.parts[b].mpSlot.Lock()
		} else if !tx.parts[b].mpSlot.TryLock() {
			tx.err = errMPRetry
			return errMPRetry
		}
		got = append(got, b)
		retry := -1
		for _, p := range want {
			if p == b {
				continue
			}
			if !tx.parts[p].mpSlot.TryLock() {
				retry = p
				break
			}
			got = append(got, p)
		}
		if retry >= 0 {
			release()
			if tx.maxHeld >= 0 {
				// Slots are pre-held below the contended one: blocking
				// here could deadlock, so fall back to the coordinator's
				// rerun-with-preacquired protocol.
				tx.err = errMPRetry
				return errMPRetry
			}
			for i, p := range want {
				if p == retry {
					first = i
					break
				}
			}
			continue
		}
		for _, p := range got {
			tx.held[p] = true
			if p > tx.maxHeld {
				tx.maxHeld = p
			}
		}
		break
	}
	for _, p := range sorted {
		if tx.sess[p] != nil {
			continue
		}
		sess, err := tx.parts[p].pe.EnlistMP(tx.id, tx.logged)
		if err != nil {
			tx.err = err
			return err
		}
		tx.sess[p] = sess
	}
	return nil
}

// releaseSlots unlocks every held slot (idempotent; order is irrelevant
// for release).
func (tx *MPTxn) releaseSlots() {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	for i, h := range tx.held {
		if h {
			tx.parts[i].mpSlot.Unlock()
			tx.held[i] = false
		}
	}
	tx.maxHeld = -1
}

// poison records a write-fragment failure. A failed write may have been
// statement-level rolled back in memory, but it was never recorded in the
// leg's PREPARE ops — committing anyway could diverge recovered state from
// memory, so the transaction is forced to abort even if the handler
// swallows the error.
func (tx *MPTxn) poison(err error) {
	tx.mu.Lock()
	if tx.err == nil {
		tx.err = err
	}
	tx.mu.Unlock()
}

// Exec runs one write statement on partition part inside the transaction.
// On a logged transaction the statement (with concrete parameters) becomes
// part of the partition's PREPARE record and is re-executed at recovery,
// so it must not depend on hidden nondeterminism.
func (tx *MPTxn) Exec(part int, sqlText string, params ...types.Value) (*pe.Result, error) {
	sess, err := tx.session(part)
	if err != nil {
		return nil, err
	}
	res, err := sess.Exec(sqlText, params...)
	if err != nil {
		tx.poison(err)
		return nil, err
	}
	tx.mu.Lock()
	tx.wrote = true
	tx.mu.Unlock()
	return res, nil
}

// InsertRows inserts a pre-evaluated row batch into a relation on
// partition part (the router's coordinated INSERT legs).
func (tx *MPTxn) InsertRows(part int, table string, rows []types.Row) (*pe.Result, error) {
	sess, err := tx.session(part)
	if err != nil {
		return nil, err
	}
	res, err := sess.InsertRows(table, rows)
	if err != nil {
		tx.poison(err)
		return nil, err
	}
	tx.mu.Lock()
	tx.wrote = true
	tx.mu.Unlock()
	return res, nil
}

// Query runs a read on partition part. The read sees the transaction's own
// uncommitted writes and, because every enlisted worker is parked, a
// stable snapshot of each partition.
func (tx *MPTxn) Query(part int, sqlText string, params ...types.Value) (*pe.Result, error) {
	sess, err := tx.session(part)
	if err != nil {
		return nil, err
	}
	return sess.Query(sqlText, params...)
}

// QueryRow is Query returning at most one row (nil when none matched).
func (tx *MPTxn) QueryRow(part int, sqlText string, params ...types.Value) (types.Row, error) {
	res, err := tx.Query(part, sqlText, params...)
	if err != nil {
		return nil, err
	}
	if len(res.Rows) == 0 {
		return nil, nil
	}
	return res.Rows[0], nil
}

// ExecAll runs the same write on every partition concurrently (enlisting
// them all) — the coordinated form of a broadcast statement. Results come
// back in partition order.
func (tx *MPTxn) ExecAll(sqlText string, params ...types.Value) ([]*pe.Result, error) {
	n := len(tx.parts)
	results := make([]*pe.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = tx.Exec(i, sqlText, params...)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// QueryAll runs the same read on every partition concurrently (enlisting
// them all) and returns the per-partition results in partition order —
// the transactional analogue of the router's query fan-out; the caller
// merges.
func (tx *MPTxn) QueryAll(sqlText string, params ...types.Value) ([]*pe.Result, error) {
	n := len(tx.parts)
	results := make([]*pe.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = tx.Query(i, sqlText, params...)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// MultiPartitionTxn runs fn as one atomic cross-partition transaction:
// every write either commits on all partitions it touched or on none, the
// enlisted partitions' serial slots are held from enlistment until the
// decision (no other execution interleaves), and on a durable store the
// writes are command-logged through 2PC PREPARE/DECIDE records so recovery
// resolves them atomically too. Returning an error from fn — or any failed
// write fragment — aborts every leg.
//
// Transactions over disjoint partition sets run concurrently; overlapping
// sets serialize on the shared partitions only. The per-partition fast
// path stays preferable for single-partition work. Call only from client
// goroutines — never from inside a stored-procedure handler (the handler's
// own partition worker would be enlisted while it is busy running the
// handler, a self-deadlock).
func (s *Store) MultiPartitionTxn(fn func(tx *MPTxn) error) error {
	// The routing fence pins the slot table and partition list for the
	// transaction's lifetime: a migration cutover (write side) waits until
	// no coordinator is mid-protocol. Internal callers (coordinated router
	// writes) already hold the read side and call runMP directly.
	s.routingMu.RLock()
	defer s.routingMu.RUnlock()
	return s.runMP(true, fn)
}

// runMP is the coordinator. logged selects command logging for the legs
// (ad-hoc router writes pass false: single-partition ad-hoc Exec is not
// logged either, and the in-memory atomicity guarantees are identical).
// Callers must hold routingMu's read side.
//
// Each attempt acquires slots optimistically as fragments route; a slot-
// order violation (errMPRetry) aborts the attempt's legs and reruns fn
// with every partition requested so far pre-acquired in ascending order.
// Handlers are re-executable by the same determinism argument command
// logging already relies on. After mpMaxTryAttempts the coordinator
// pre-acquires all slots, which cannot fail.
func (s *Store) runMP(logged bool, fn func(tx *MPTxn) error) error {
	s.met.MPConcurrent.Add(1)
	defer s.met.MPConcurrent.Add(-1)
	parts := s.partList()
	// Admission: bound the coordinators competing for enlistment slots
	// (see mpAdmit). The token covers the slot-holding phase only —
	// attemptMP hands it back as soon as the slots release, so the
	// durability tail pipelines without consuming a token.
	s.mpAdmitOnce.Do(func() {
		s.mpAdmit = make(chan struct{}, len(parts))
	})
	s.mpAdmit <- struct{}{}
	admitDone := sync.OnceFunc(func() { <-s.mpAdmit })
	defer admitDone()
	need := make([]bool, len(parts))
	for attempt := 0; ; attempt++ {
		if attempt == mpMaxTryAttempts {
			for i := range need {
				need[i] = true
			}
		}
		err, retry := s.attemptMP(logged, fn, parts, need, admitDone)
		if !retry {
			return err
		}
	}
}

// attemptMP runs one optimistic attempt of a coordinated transaction,
// pre-acquiring the slots marked in need (ascending). retry reports a
// slot-order violation; the caller reruns with need extended by every
// partition this attempt requested.
func (s *Store) attemptMP(logged bool, fn func(tx *MPTxn) error, parts []*partition, need []bool, admitDone func()) (err error, retry bool) {
	tx := &MPTxn{
		s:         s,
		id:        s.nextMPTxnID.Add(1),
		logged:    logged,
		parts:     parts,
		sess:      make([]*pe.MPSession, len(parts)),
		held:      make([]bool, len(parts)),
		requested: make([]bool, len(parts)),
		maxHeld:   -1,
	}
	defer tx.releaseSlots() // no-op on the paths that released already
	for i, n := range need {
		if n {
			parts[i].mpSlot.Lock()
			tx.held[i] = true
			tx.maxHeld = i
		}
	}

	ferr := runMPHandler(fn, tx)
	tx.mu.Lock()
	if ferr == nil {
		ferr = tx.err // a poisoned transaction aborts even if fn returned nil
	}
	if errors.Is(tx.err, errMPRetry) {
		// Slot-order violation: roll the attempt back and rerun with the
		// accumulated need-set pre-acquired. Not counted as an abort — the
		// transaction has not failed, it is being re-ordered.
		for i, r := range tx.requested {
			if r {
				need[i] = true
			}
		}
		tx.mu.Unlock()
		tx.finishAll(false)
		return nil, true
	}
	tx.mu.Unlock()
	if ferr == nil {
		ferr = tx.prepareAll()
	}
	if ferr != nil {
		tx.deliverAll(false)
		tx.releaseSlots()
		tx.resolveAll()
		s.met.MPAborts.Add(1)
		return ferr, false
	}
	s.met.MPTxns.Add(1)
	// Every vote is in: the transaction commits. The votes' PREPARE
	// records are appended now — an append failure is still a clean
	// abort, nothing has been delivered — but their fsyncs are NOT
	// waited for under the slots. That wait moves below, after release:
	// pipelined 2PC.
	if err := tx.appendPrepares(); err != nil {
		tx.deliverAll(false)
		tx.releaseSlots()
		tx.resolveAll()
		s.met.MPAborts.Add(1)
		return err, false
	}
	// The durability future goes up on the written partitions before any
	// of this transaction's state becomes visible: everything that
	// subsequently commits on those partitions chains its own client ack
	// on this outcome (see mpOutcome). Install while the workers are
	// still parked so no commit can slip between publication and the
	// dependency becoming observable.
	if len(tx.prepParts) > 0 {
		tx.installOutcome()
	}
	// Commit publication window: every leg publishes its partition's
	// commit sequence during delivery, and holding seqMu exclusively
	// keeps a fan-out reader's snapshot vector from cutting between two
	// legs' publications (all-or-nothing visibility). The lock covers
	// only the in-memory window — durability resolves after it is
	// released, so snapshot readers are never parked behind the disk.
	s.seqMu.Lock()
	derr := tx.deliverAll(true)
	s.seqMu.Unlock()
	// Slots release before every durability wait: the partitions'
	// in-memory state is committed and their workers are free, so the
	// next coordinator enlists, executes, and appends its own votes —
	// which batch into the same daemon fsyncs this transaction is about
	// to wait on — while this coordinator settles durability off-slot.
	// Crash safety rests on two rules. First, the client is acknowledged
	// only after the full chain below resolves (votes durable, decision
	// durable, markers durable, predecessor outcomes resolved), so an
	// acked transaction always recovers committed. Second, anything that
	// committed against this transaction's published-but-undurable state
	// had its ack chained on this outcome, so the crash window exposes
	// no acknowledged dependent either. Un-acked transactions recover by
	// presumed abort: no decision record and no marker means aborted.
	tx.releaseSlots()
	admitDone()
	var derr2 error
	if verr := tx.waitVotes(); verr != nil {
		// The legs already applied and published; a failed vote force
		// cannot abort them. The log is poisoned — surface it loudly
		// (this client and every chained successor fails rather than
		// being acknowledged against maybe-lost state).
		derr2 = fmt.Errorf("core: mp prepare force (legs committed, log poisoned): %w", verr)
	} else if len(tx.prepParts) > 0 {
		if len(tx.prepParts) == 1 {
			// One-phase commit: the single writing leg's DECIDE marker
			// (appended after its vote is durable, in the same log) is
			// the commit record; recovery finds it in the partition
			// log's pre-scan. No coordinator force needed.
			s.met.MPOnePhase.Add(1)
			derr2 = tx.appendMarkers()
		} else if err := s.appendDecision(tx.id); err != nil {
			// Same poisoned-log shape as a failed vote force: the
			// decision may not survive, so neither client nor chained
			// successors may be acknowledged cleanly.
			derr2 = fmt.Errorf("core: mp decision log (legs committed, coord log poisoned): %w", err)
		} else {
			// Decision durable: the markers appended now are redundant
			// copies of it in each participant log (they make each leg
			// self-resolving if the coordinator log is ever truncated
			// first) and can never witness an undecided commit.
			derr2 = tx.appendMarkers()
		}
	}
	var oerr error
	if tx.outcome != nil {
		oerr = tx.resolveOutcome(derr2)
	}
	return errors.Join(derr, oerr, tx.resolveAll()), false
}

// runMPHandler executes fn, converting panics into aborts so a buggy
// handler cannot leave partition workers parked forever.
func runMPHandler(fn func(tx *MPTxn) error, tx *MPTxn) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("core: mp txn handler panicked: %v", rec)
		}
	}()
	return fn(tx)
}

// prepareAll collects every enlisted partition's vote in parallel. A vote
// is a pure rendezvous — no log write: a writing leg hands its logged op
// set back for the coordinator to append after all votes are in, and a
// read-only leg votes yes and releases its worker on the spot (its slot
// stays held until the decision window — releasing it early would let a
// conflicting transaction slip between this transaction's reads and its
// commit). Any non-nil vote is a veto.
func (tx *MPTxn) prepareAll() error {
	var wg sync.WaitGroup
	votes := make([]error, len(tx.sess))
	for i, sess := range tx.sess {
		if sess == nil {
			continue
		}
		wg.Add(1)
		go func(i int, sess *pe.MPSession) {
			defer wg.Done()
			votes[i] = sess.Prepare()
		}(i, sess)
	}
	wg.Wait()
	for i, err := range votes {
		if err != nil {
			return fmt.Errorf("core: mp prepare (partition %d): %w", i, err)
		}
	}
	return nil
}

// deliverAll sends the decision to every enlisted leg in parallel and
// returns once each leg's in-memory state reflects it — the commit
// publications happen inside this call, which the caller covers with the
// publication lock. Read-only legs released at PREPARE are skipped.
func (tx *MPTxn) deliverAll(commit bool) error {
	var wg sync.WaitGroup
	errs := make([]error, len(tx.sess))
	for i, sess := range tx.sess {
		if sess == nil {
			continue
		}
		wg.Add(1)
		go func(i int, sess *pe.MPSession) {
			defer wg.Done()
			errs[i] = sess.Deliver(commit)
		}(i, sess)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// resolveAll waits for every delivered leg's final acknowledgement
// (durability under group commit).
func (tx *MPTxn) resolveAll() error {
	var wg sync.WaitGroup
	errs := make([]error, len(tx.sess))
	for i, sess := range tx.sess {
		if sess == nil {
			continue
		}
		wg.Add(1)
		go func(i int, sess *pe.MPSession) {
			defer wg.Done()
			errs[i] = sess.Resolve()
		}(i, sess)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// finishAll is deliverAll + resolveAll — the abort path, which needs no
// publication lock (rollbacks publish nothing).
func (tx *MPTxn) finishAll(commit bool) error {
	derr := tx.deliverAll(commit)
	return errors.Join(derr, tx.resolveAll())
}

// appendDecision forces a commit decision record into the coordinator log.
// Under group commit the append shares coord.log's daemon fsync with every
// other in-flight coordinator's decision. The wait rides the daemon's own
// tick — kicking an immediate fsync per decision would shrink batches to
// one record and burn the disk (and, on small machines, the CPU) on
// per-transaction syncs; the tick bounds the added latency at one
// group-commit interval, well off the enlistment-slot critical path.
func (s *Store) appendDecision(txnID uint64) error {
	payload := wal.EncodeRecord(&pe.LogRecord{Kind: pe.RecDecide, MPTxnID: txnID, Commit: true})
	if s.coordLog.GroupCommit() {
		_, ack, err := s.coordLog.AppendAsync(payload)
		if err != nil {
			return err
		}
		if err := <-ack; err != nil {
			return err
		}
	} else if _, err := s.coordLog.Append(payload); err != nil {
		return err
	}
	s.met.LogRecords.Add(1)
	s.met.LogBytes.Add(int64(len(payload) + 8))
	return nil
}

// acquireAllSlots locks every partition's enlistment slot in ascending
// order — the all-partition barrier's first step (after exclMu, before
// parking workers). With every slot held, no coordinator is mid-protocol
// anywhere in the store. sort keeps the contract obvious if partition
// lists ever stop being index-ordered.
func acquireAllSlots(parts []*partition) {
	idx := make([]int, len(parts))
	for i := range parts {
		idx[i] = i
	}
	sort.Ints(idx)
	for _, i := range idx {
		parts[i].mpSlot.Lock()
	}
}

// releaseAllSlots unlocks every partition's enlistment slot.
func releaseAllSlots(parts []*partition) {
	for _, p := range parts {
		p.mpSlot.Unlock()
	}
}
