package core

// This file evaluates a distributed SELECT's HAVING clause over the MERGED
// result instead of per leg. Per-partition groups are partial, so HAVING
// over an aggregate (HAVING SUM(x) > 10) must run after re-aggregation;
// the router strips it from the leg statements, carries any aggregates it
// references as hidden projection columns, and filters the merged rows.
// The evaluator is the execution engine's own (ee.CompileResolved): leaves
// the merge carries as columns resolve to merged-row positions, and every
// operator keeps the engine's semantics (three-valued logic, NULL
// propagation, float widening), so distributed HAVING cannot drift from
// single-partition execution. A separate hand-rolled evaluator used to
// live here and drifted exactly that way.

import (
	"repro/internal/ee"
	"repro/internal/sql"
)

// mergedExpr evaluates against one merged output row (pre-trim, so hidden
// aggregate columns are addressable).
type mergedExpr = ee.CompiledExpr

// compileMergeExpr compiles expr into a closure over merged rows. resolve
// maps leaf expressions the merge carries as columns — projected group
// keys and (hidden or projected) aggregates — to their output positions;
// it returns ok=false for leaves it cannot place, which falls through to
// structural compilation in the engine (column refs then fail: there is no
// table scope after the merge).
func compileMergeExpr(expr sql.Expr, resolve func(sql.Expr) (int, bool, error)) (mergedExpr, error) {
	return ee.CompileResolved(expr, resolve)
}

// mergeExprEqual reports structural equality of two expressions — the
// matcher that lets HAVING reuse a projected aggregate's merged column
// instead of carrying a hidden duplicate.
func mergeExprEqual(a, b sql.Expr) bool { return ee.ExprEqual(a, b) }
