package core

// This file evaluates a distributed SELECT's HAVING clause over the MERGED
// result instead of per leg. Per-partition groups are partial, so HAVING
// over an aggregate (HAVING SUM(x) > 10) must run after re-aggregation;
// the router strips it from the leg statements, carries any aggregates it
// references as hidden projection columns, and filters the merged rows
// with this small evaluator. Semantics mirror the execution engine's
// (three-valued logic, NULL-propagating comparisons and arithmetic).

import (
	"fmt"
	"strings"

	"repro/internal/sql"
	"repro/internal/types"
)

// mergedExpr evaluates against one merged output row (pre-trim, so hidden
// aggregate columns are addressable).
type mergedExpr func(row types.Row, params []types.Value) (types.Value, error)

// compileMergeExpr compiles expr into a closure over merged rows. resolve
// maps leaf expressions the merge carries as columns — projected group
// keys and (hidden or projected) aggregates — to their output positions;
// it returns ok=false for leaves it cannot place, which is a compile
// error here.
func compileMergeExpr(expr sql.Expr, resolve func(sql.Expr) (int, bool, error)) (mergedExpr, error) {
	if pos, ok, err := resolve(expr); err != nil {
		return nil, err
	} else if ok {
		return func(row types.Row, _ []types.Value) (types.Value, error) {
			if pos >= len(row) {
				return types.Null, fmt.Errorf("core: merged HAVING column %d out of range", pos)
			}
			return row[pos], nil
		}, nil
	}
	switch x := expr.(type) {
	case *sql.Literal:
		v := x.Value
		return func(types.Row, []types.Value) (types.Value, error) { return v, nil }, nil
	case *sql.Param:
		idx := x.Index
		return func(_ types.Row, params []types.Value) (types.Value, error) {
			if idx >= len(params) {
				return types.Null, fmt.Errorf("core: HAVING parameter %d not supplied", idx+1)
			}
			return params[idx], nil
		}, nil
	case *sql.Unary:
		sub, err := compileMergeExpr(x.X, resolve)
		if err != nil {
			return nil, err
		}
		if x.Op == "NOT" {
			return func(row types.Row, params []types.Value) (types.Value, error) {
				v, err := sub(row, params)
				if err != nil || v.IsNull() {
					return types.Null, err
				}
				return types.NewBool(!v.IsTrue()), nil
			}, nil
		}
		return func(row types.Row, params []types.Value) (types.Value, error) {
			v, err := sub(row, params)
			if err != nil || v.IsNull() {
				return types.Null, err
			}
			switch v.Type() {
			case types.TypeInt:
				return types.NewInt(-v.Int()), nil
			case types.TypeFloat:
				return types.NewFloat(-v.Float()), nil
			}
			return types.Null, fmt.Errorf("core: unary minus applied to %s", v.Type())
		}, nil
	case *sql.Binary:
		return compileMergeBinary(x, resolve)
	case *sql.IsNull:
		sub, err := compileMergeExpr(x.X, resolve)
		if err != nil {
			return nil, err
		}
		negate := x.Negate
		return func(row types.Row, params []types.Value) (types.Value, error) {
			v, err := sub(row, params)
			if err != nil {
				return types.Null, err
			}
			return types.NewBool(v.IsNull() != negate), nil
		}, nil
	case *sql.Between:
		sub, err := compileMergeExpr(x.X, resolve)
		if err != nil {
			return nil, err
		}
		lo, err := compileMergeExpr(x.Lo, resolve)
		if err != nil {
			return nil, err
		}
		hi, err := compileMergeExpr(x.Hi, resolve)
		if err != nil {
			return nil, err
		}
		negate := x.Negate
		return func(row types.Row, params []types.Value) (types.Value, error) {
			v, err := sub(row, params)
			if err != nil || v.IsNull() {
				return types.Null, err
			}
			lv, err := lo(row, params)
			if err != nil || lv.IsNull() {
				return types.Null, err
			}
			hv, err := hi(row, params)
			if err != nil || hv.IsNull() {
				return types.Null, err
			}
			in := v.Compare(lv) >= 0 && v.Compare(hv) <= 0
			return types.NewBool(in != negate), nil
		}, nil
	case *sql.InList:
		sub, err := compileMergeExpr(x.X, resolve)
		if err != nil {
			return nil, err
		}
		items := make([]mergedExpr, len(x.List))
		for i, it := range x.List {
			if items[i], err = compileMergeExpr(it, resolve); err != nil {
				return nil, err
			}
		}
		negate := x.Negate
		return func(row types.Row, params []types.Value) (types.Value, error) {
			v, err := sub(row, params)
			if err != nil || v.IsNull() {
				return types.Null, err
			}
			sawNull := false
			for _, it := range items {
				iv, err := it(row, params)
				if err != nil {
					return types.Null, err
				}
				if iv.IsNull() {
					sawNull = true
					continue
				}
				if v.Compare(iv) == 0 {
					return types.NewBool(!negate), nil
				}
			}
			if sawNull {
				return types.Null, nil
			}
			return types.NewBool(negate), nil
		}, nil
	}
	return nil, fmt.Errorf("core: HAVING across partitions cannot evaluate %T after the merge; project the value and filter client-side", expr)
}

func compileMergeBinary(x *sql.Binary, resolve func(sql.Expr) (int, bool, error)) (mergedExpr, error) {
	l, err := compileMergeExpr(x.L, resolve)
	if err != nil {
		return nil, err
	}
	r, err := compileMergeExpr(x.R, resolve)
	if err != nil {
		return nil, err
	}
	op := x.Op
	switch op {
	case "AND", "OR":
		and := op == "AND"
		return func(row types.Row, params []types.Value) (types.Value, error) {
			lv, err := l(row, params)
			if err != nil {
				return types.Null, err
			}
			if and && !lv.IsNull() && !lv.IsTrue() {
				return types.NewBool(false), nil
			}
			if !and && lv.IsTrue() {
				return types.NewBool(true), nil
			}
			rv, err := r(row, params)
			if err != nil {
				return types.Null, err
			}
			if and {
				switch {
				case !rv.IsNull() && !rv.IsTrue():
					return types.NewBool(false), nil
				case lv.IsNull() || rv.IsNull():
					return types.Null, nil
				}
				return types.NewBool(true), nil
			}
			switch {
			case rv.IsTrue():
				return types.NewBool(true), nil
			case lv.IsNull() || rv.IsNull():
				return types.Null, nil
			}
			return types.NewBool(false), nil
		}, nil
	case "=", "!=", "<", "<=", ">", ">=":
		return func(row types.Row, params []types.Value) (types.Value, error) {
			lv, err := l(row, params)
			if err != nil {
				return types.Null, err
			}
			rv, err := r(row, params)
			if err != nil {
				return types.Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return types.Null, nil
			}
			c := lv.Compare(rv)
			var b bool
			switch op {
			case "=":
				b = c == 0
			case "!=":
				b = c != 0
			case "<":
				b = c < 0
			case "<=":
				b = c <= 0
			case ">":
				b = c > 0
			case ">=":
				b = c >= 0
			}
			return types.NewBool(b), nil
		}, nil
	case "+", "-", "*", "/", "%":
		return func(row types.Row, params []types.Value) (types.Value, error) {
			lv, err := l(row, params)
			if err != nil {
				return types.Null, err
			}
			rv, err := r(row, params)
			if err != nil {
				return types.Null, err
			}
			return mergeArith(op, lv, rv)
		}, nil
	}
	return nil, fmt.Errorf("core: HAVING across partitions does not support operator %q", op)
}

// mergeArith mirrors the execution engine's arithmetic (NULL-propagating,
// float-widening, timestamp-permitting, zero-division error — keep in
// lockstep with ee's evalArith; unifying the two evaluators behind an
// exported ee compile-with-resolver hook is a noted follow-up).
func mergeArith(op string, l, r types.Value) (types.Value, error) {
	if l.IsNull() || r.IsNull() {
		return types.Null, nil
	}
	if !l.IsNumeric() && l.Type() != types.TypeTimestamp {
		return types.Null, fmt.Errorf("core: HAVING arithmetic on %s", l.Type())
	}
	if !r.IsNumeric() && r.Type() != types.TypeTimestamp {
		return types.Null, fmt.Errorf("core: HAVING arithmetic on %s", r.Type())
	}
	if l.Type() == types.TypeFloat || r.Type() == types.TypeFloat {
		a, b := l.Float(), r.Float()
		switch op {
		case "+":
			return types.NewFloat(a + b), nil
		case "-":
			return types.NewFloat(a - b), nil
		case "*":
			return types.NewFloat(a * b), nil
		case "/":
			if b == 0 {
				return types.Null, fmt.Errorf("core: division by zero in HAVING")
			}
			return types.NewFloat(a / b), nil
		case "%":
			if b == 0 {
				return types.Null, fmt.Errorf("core: division by zero in HAVING")
			}
			if int64(b) == 0 {
				// Fractional divisor truncating to zero: mirror the engine's
				// integer modulus without its divide-by-zero panic.
				return types.Null, fmt.Errorf("core: modulus by a divisor truncating to zero in HAVING")
			}
			return types.NewInt(int64(a) % int64(b)), nil
		}
	}
	a, b := l.Int(), r.Int()
	switch op {
	case "+":
		return types.NewInt(a + b), nil
	case "-":
		return types.NewInt(a - b), nil
	case "*":
		return types.NewInt(a * b), nil
	case "/":
		if b == 0 {
			return types.Null, fmt.Errorf("core: division by zero in HAVING")
		}
		return types.NewInt(a / b), nil
	case "%":
		if b == 0 {
			return types.Null, fmt.Errorf("core: division by zero in HAVING")
		}
		return types.NewInt(a % b), nil
	}
	return types.Null, fmt.Errorf("core: unknown arithmetic operator %q", op)
}

// mergeExprEqual reports structural equality of two expressions — the
// matcher that lets HAVING reuse a projected aggregate's merged column
// instead of carrying a hidden duplicate.
func mergeExprEqual(a, b sql.Expr) bool {
	switch x := a.(type) {
	case *sql.Literal:
		y, ok := b.(*sql.Literal)
		return ok && x.Value.Equal(y.Value) && x.Value.Type() == y.Value.Type()
	case *sql.ColumnRef:
		y, ok := b.(*sql.ColumnRef)
		return ok && strings.EqualFold(x.Table, y.Table) && strings.EqualFold(x.Column, y.Column)
	case *sql.Param:
		y, ok := b.(*sql.Param)
		return ok && x.Index == y.Index
	case *sql.Unary:
		y, ok := b.(*sql.Unary)
		return ok && x.Op == y.Op && mergeExprEqual(x.X, y.X)
	case *sql.Binary:
		y, ok := b.(*sql.Binary)
		return ok && x.Op == y.Op && mergeExprEqual(x.L, y.L) && mergeExprEqual(x.R, y.R)
	case *sql.FuncCall:
		y, ok := b.(*sql.FuncCall)
		if !ok || !strings.EqualFold(x.Name, y.Name) || x.Star != y.Star || x.Distinct != y.Distinct || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !mergeExprEqual(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}
