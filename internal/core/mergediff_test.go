package core

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/pe"
	"repro/internal/types"
)

// TestMergeDifferentialOneVsManyPartitions is the differential oracle for
// the fan-out merge: every supported HAVING / aggregate-expression shape
// must produce identical results on one partition (no merge — the engine
// executes the statement whole) and on four (legs + post-merge HAVING via
// the shared ee evaluator). Any drift between the two evaluators shows up
// as a row-set mismatch.
func TestMergeDifferentialOneVsManyPartitions(t *testing.T) {
	build := func(parts int) *Store {
		st := Open(Config{Partitions: parts})
		if err := st.ExecScript(`CREATE TABLE m (k BIGINT PRIMARY KEY, g BIGINT, v BIGINT) PARTITION BY k;`); err != nil {
			t.Fatal(err)
		}
		if err := st.Start(); err != nil {
			t.Fatal(err)
		}
		// 48 rows over 6 groups, one NULL v per group (NULL propagation is
		// where hand-rolled evaluators historically drifted).
		for k := int64(0); k < 48; k++ {
			v := types.NewInt(k % 7)
			if k%8 == 7 {
				v = types.Null
			}
			if _, err := st.Exec("INSERT INTO m VALUES (?, ?, ?)",
				types.NewInt(k), types.NewInt(k%6), v); err != nil {
				t.Fatal(err)
			}
		}
		return st
	}
	one := build(1)
	defer one.Stop()
	four := build(4)
	defer four.Stop()

	queries := []struct {
		sql    string
		params []types.Value
	}{
		{sql: "SELECT g, COUNT(*) FROM m GROUP BY g HAVING COUNT(*) > 7"},
		{sql: "SELECT g, SUM(v) FROM m GROUP BY g HAVING SUM(v) > 20"},
		{sql: "SELECT g FROM m GROUP BY g HAVING SUM(v) > 20"},
		{sql: "SELECT g, AVG(v) FROM m GROUP BY g HAVING AVG(v) >= 3"},
		{sql: "SELECT g FROM m GROUP BY g HAVING AVG(v) >= 3"},
		{sql: "SELECT g, MIN(v), MAX(v) FROM m GROUP BY g HAVING MAX(v) - MIN(v) >= 5"},
		{sql: "SELECT g, COUNT(v) FROM m GROUP BY g HAVING COUNT(v) < COUNT(*)"},
		{sql: "SELECT g, SUM(v) FROM m GROUP BY g HAVING SUM(v) + COUNT(*) > 28"},
		{sql: "SELECT g, SUM(v) FROM m GROUP BY g HAVING SUM(v) % 2 = 0"},
		{sql: "SELECT g, SUM(v) FROM m GROUP BY g HAVING SUM(v) > 20 AND COUNT(*) > 7"},
		{sql: "SELECT g, SUM(v) FROM m GROUP BY g HAVING SUM(v) > 25 OR AVG(v) < 3"},
		{sql: "SELECT g, SUM(v) FROM m GROUP BY g HAVING NOT (SUM(v) <= 20)"},
		{sql: "SELECT g, COUNT(*) FROM m GROUP BY g HAVING COUNT(*) > ?",
			params: []types.Value{types.NewInt(7)}},
		{sql: "SELECT g, SUM(v) FROM m GROUP BY g HAVING SUM(v) * ? > 40",
			params: []types.Value{types.NewInt(2)}},
		{sql: "SELECT g, SUM(v) FROM m GROUP BY g HAVING g >= 2"},
		{sql: "SELECT g, SUM(v) FROM m GROUP BY g HAVING g + 1 > SUM(v) / 10"},
		{sql: "SELECT COUNT(*), SUM(v), MIN(v), MAX(v) FROM m"},
		{sql: "SELECT AVG(v) FROM m"},
		{sql: "SELECT g, SUM(v) FROM m WHERE v IS NOT NULL GROUP BY g HAVING SUM(v) > 20"},
		{sql: "SELECT g, COUNT(*) FROM m WHERE v > 2 GROUP BY g HAVING COUNT(*) >= 3"},
		{sql: "SELECT g, SUM(v) FROM m GROUP BY g ORDER BY g"},
		{sql: "SELECT g, SUM(v) FROM m GROUP BY g HAVING SUM(v) > 15 ORDER BY 2 DESC, g"},
		{sql: "SELECT g, SUM(v) FROM m GROUP BY g ORDER BY g LIMIT 3"},
		// Expressions over aggregates in the projection: legs compute the
		// contained aggregates, the router evaluates the expression over
		// the merged partials.
		{sql: "SELECT g, SUM(v) / COUNT(v) FROM m GROUP BY g"},
		{sql: "SELECT SUM(v) / COUNT(v) FROM m"},
		{sql: "SELECT g, MAX(v) - MIN(v) FROM m GROUP BY g"},
		{sql: "SELECT g, SUM(v) + COUNT(*) AS s FROM m GROUP BY g ORDER BY s DESC, g"},
		{sql: "SELECT g, AVG(v) * 2 FROM m GROUP BY g"},
		{sql: "SELECT g, COUNT(*) - COUNT(v) FROM m GROUP BY g"},
		{sql: "SELECT g, SUM(v) + g FROM m GROUP BY g"},
		{sql: "SELECT g, SUM(v) * ? FROM m GROUP BY g",
			params: []types.Value{types.NewInt(2)}},
		{sql: "SELECT g, SUM(v) / (COUNT(*) + ?) FROM m GROUP BY g",
			params: []types.Value{types.NewInt(1)}},
		{sql: "SELECT g, SUM(v), SUM(v) / COUNT(v) FROM m GROUP BY g HAVING SUM(v) > 15"},
		{sql: "SELECT g, SUM(v) % 5 FROM m GROUP BY g ORDER BY g LIMIT 4"},
		{sql: "SELECT g, SUM(v) / COUNT(v) AS r FROM m GROUP BY g HAVING COUNT(*) > 7 ORDER BY g"},
	}
	for _, q := range queries {
		a, err := one.Query(q.sql, q.params...)
		if err != nil {
			t.Fatalf("1 partition: %s: %v", q.sql, err)
		}
		b, err := four.Query(q.sql, q.params...)
		if err != nil {
			t.Fatalf("4 partitions: %s: %v", q.sql, err)
		}
		if got, want := canonRows(b, q.sql), canonRows(a, q.sql); got != want {
			t.Errorf("differential drift on %q:\n 1 partition: %s\n 4 partitions: %s", q.sql, want, got)
		}
	}
}

// canonRows renders a result for comparison. Ordered queries compare
// verbatim; unordered ones compare as sorted multisets.
func canonRows(res *pe.Result, sqlText string) string {
	lines := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		line := ""
		for _, v := range r {
			if v.IsNull() {
				line += "NULL|"
			} else if v.Type() == types.TypeFloat {
				line += fmt.Sprintf("%.9g|", v.Float())
			} else {
				line += v.String() + "|"
			}
		}
		lines = append(lines, line)
	}
	ordered := false
	for i := 0; i+8 <= len(sqlText); i++ {
		if sqlText[i:i+8] == "ORDER BY" {
			ordered = true
			break
		}
	}
	if !ordered {
		sort.Strings(lines)
	}
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}
