package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/catalog"
	"repro/internal/pe"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/types"
)

// This file is the router: the thin layer that maps client requests onto
// the store's partitions. Routing rules:
//
//   - Ingest on a PARTITION BY stream splits the tuples by key hash and
//     forwards each share to its owning partition; unpartitioned streams
//     are pinned to partition 0.
//   - Call routes by the procedure's PartitionParam (partition 0 when
//     unpartitioned).
//   - Exec routes single-partition INSERTs by key, broadcasts UPDATE /
//     DELETE on partitioned tables (each partition touches only its local
//     rows), and broadcasts writes to unpartitioned tables, which are
//     treated as replicated reference data.
//   - Query fans out to all partitions when a partitioned relation is
//     referenced and merges the per-partition results (concatenation,
//     re-aggregation of COUNT/SUM/MIN/MAX, global re-sort, LIMIT).
//
// Keys do not map to partitions directly: catalog.PartitionHash (FNV-1a
// over a canonical, cross-process-stable encoding) buckets every key into
// one of catalog.NumSlots slots, and the store's published SlotTable maps
// slots to partitions. Rebalance moves ownership one slot at a time, so a
// routing decision and a cutover synchronize on routingMu: fast paths
// resolve-and-enqueue under the read side, cutovers swap the table under
// the write side.

// partitionHash is the routing hash (see catalog.PartitionHash).
func partitionHash(v types.Value) uint64 { return catalog.PartitionHash(v) }

// partitionFor maps a key value to its owning partition index per the
// published slot table.
func (s *Store) partitionFor(v types.Value) int {
	return s.slots.Load().Partition(v)
}

// routingRelation resolves a relation for routing decisions, synchronized
// against runtime DDL. The returned Relation's metadata fields (Kind,
// PartCol, Schema) are immutable after creation; only the catalog map
// itself needs the lock.
func (s *Store) routingRelation(name string) *catalog.Relation {
	s.routeMu.RLock()
	defer s.routeMu.RUnlock()
	return s.partList()[0].cat.Relation(name)
}

// callTarget picks the partition engine that owns a procedure invocation.
// A missing partitioning parameter is an error, not a fallback: silently
// running on partition 0 would write keyed rows to a partition that does
// not own them.
func (s *Store) callTarget(proc string, params []types.Value) (*pe.Engine, error) {
	p0 := s.partList()[0]
	if len(s.partList()) == 1 {
		return p0.pe, nil
	}
	pr := p0.pe.Procedure(proc)
	if pr == nil || pr.PartitionParam <= 0 {
		return p0.pe, nil // unknown proc errors in the engine; unpartitioned runs on 0
	}
	if pr.PartitionParam > len(params) {
		return nil, fmt.Errorf("core: procedure %q routes by parameter %d but only %d supplied",
			proc, pr.PartitionParam, len(params))
	}
	return s.partList()[s.partitionFor(params[pr.PartitionParam-1])].pe, nil
}

// Ingest pushes tuples onto a bound border stream, hash-splitting them
// across partitions when the stream declares PARTITION BY. Relative order
// is preserved within each partition (the paper's per-partition natural
// order; there is no cross-partition order, exactly as in H-Store).
func (s *Store) Ingest(stream string, rows ...types.Row) error {
	// Route-and-enqueue under the routing fence: a cutover cannot flip a
	// slot's owner between the hash decision below and the owning worker
	// receiving its share.
	s.routingMu.RLock()
	defer s.routingMu.RUnlock()
	if len(s.partList()) == 1 {
		return s.partList()[0].pe.Ingest(stream, rows...)
	}
	rel := s.routingRelation(stream)
	if rel == nil || !rel.Partitioned() {
		return s.partList()[0].pe.Ingest(stream, rows...)
	}
	// Router-level pause gate: a spanning batch into a paused dataflow
	// must queue or reject as a unit. The store-wide backlog bound is
	// checked and the shares forwarded under pauseGateMu, so one
	// partition's full backlog can never reject its share after other
	// partitions already queued theirs (a client retry would then
	// duplicate rows). Unpaused ingest takes none of this.
	if g := s.pausedGraphOf(stream); g != "" {
		s.pauseGateMu.Lock()
		defer s.pauseGateMu.Unlock()
		if s.pausedGraphOf(stream) != "" { // still paused under the gate
			backlog := 0
			for _, p := range s.partList() {
				backlog += p.pe.PartialLen(stream)
			}
			if backlog+len(rows) > pe.MaxPausedBacklog {
				return fmt.Errorf("core: dataflow %q is paused and stream %q has a full backlog (%d tuples); resume the dataflow or retry later",
					g, stream, backlog)
			}
		}
	}
	buckets := make([][]types.Row, len(s.partList()))
	for _, r := range rows {
		if rel.PartCol >= len(r) {
			return fmt.Errorf("core: ingest into %s: row has %d columns, partition column is #%d",
				stream, len(r), rel.PartCol+1)
		}
		// Hash the key as the engine will store it (defaults applied,
		// coerced), or the tuple would live on a partition keyed reads and
		// routed INSERTs never consult.
		v, err := insertPartValue(rel, r[rel.PartCol])
		if err != nil {
			return fmt.Errorf("core: ingest into %s: %w", stream, err)
		}
		i := s.partitionFor(v)
		buckets[i] = append(buckets[i], r)
	}
	for i, b := range buckets {
		if len(b) == 0 {
			continue
		}
		if err := s.partList()[i].pe.Ingest(stream, b...); err != nil {
			return err
		}
	}
	return nil
}

// Exec runs an ad-hoc DML statement as its own transaction (not command-
// logged; durable writes belong in stored procedures), routed per the rules
// at the top of this file.
func (s *Store) Exec(sqlText string, params ...types.Value) (*pe.Result, error) {
	// Dataflow and administrative statements run before the routing fence:
	// DEPLOY takes the all-partition barrier and ALTER SYSTEM PARTITIONS
	// takes routingMu exclusively inside Rebalance, so neither must be
	// entered with the shared side held.
	if res, handled, err := s.dataflowStatement(sqlText); handled {
		return res, err
	}
	if res, handled, err := s.adminStatement(sqlText); handled {
		return res, err
	}
	// The routing fence covers the whole statement: keyed INSERT routing
	// resolves targets and enqueues under it, and the coordinated branches
	// acquire exclMu inside it (routingMu is ordered before exclMu — the
	// same order a cutover uses).
	s.routingMu.RLock()
	defer s.routingMu.RUnlock()
	if len(s.partList()) == 1 {
		return s.partList()[0].pe.Exec(sqlText, params...)
	}
	// ParseCached shares ASTs between calls; the fan-out planner below is
	// read-only over the tree (it value-copies the Select before rewriting
	// a leg), so sharing is safe.
	stmt, err := sql.ParseCached(sqlText)
	if err != nil {
		return nil, err
	}
	switch st := stmt.(type) {
	case *sql.Insert:
		rel := s.routingRelation(st.Table)
		if rel == nil {
			return s.partList()[0].pe.Exec(sqlText, params...) // engine produces the error
		}
		if st.Query != nil {
			return s.execInsertSelect(st, rel, sqlText, params)
		}
		if !rel.Partitioned() {
			if rel.Kind == catalog.KindTable {
				// Replicated reference table: every replica applies the same
				// statement, coordinated so a failing leg (say, a duplicate
				// key raced onto one partition) cannot leave the replicas
				// diverged.
				return s.coordExecAll(sqlText, params, false)
			}
			return s.partList()[0].pe.Exec(sqlText, params...)
		}
		colMap, err := insertColMap(st, rel)
		if err != nil {
			return nil, err
		}
		targets, err := s.insertTargets(st, rel, colMap, params)
		if err != nil {
			return nil, err
		}
		if idx, single := singleTarget(targets); single {
			return s.partList()[idx].pe.Exec(sqlText, params...) // today's fast path
		}
		// The tuples span partitions: materialize them and run one
		// coordinated transaction with a row-batch leg per owning partition
		// — all partitions insert or none do.
		rows, err := s.staticInsertRows(st, rel, colMap, params)
		if err != nil {
			return nil, err
		}
		buckets := make(map[int][]types.Row)
		for i, row := range rows {
			buckets[targets[i]] = append(buckets[targets[i]], row)
		}
		return s.coordInsertBuckets(rel.Name, buckets)
	case *sql.Update:
		// Re-keying a row would leave it on a partition that no longer owns
		// its hash: keyed routing would miss it and routed INSERTs could
		// duplicate its primary key store-wide.
		if rel := s.routingRelation(st.Table); rel != nil && rel.Partitioned() {
			partName := rel.Schema.Column(rel.PartCol).Name
			for _, a := range st.Set {
				if strings.EqualFold(a.Column, partName) {
					return nil, fmt.Errorf("core: UPDATE cannot change partition column %q of %q (rows cannot move between partitions)", partName, rel.Name)
				}
			}
		}
		exprs := []sql.Expr{st.Where}
		for _, a := range st.Set {
			exprs = append(exprs, a.Value)
		}
		if err := s.vetWriteExprs(st.Table, exprs...); err != nil {
			return nil, err
		}
		return s.routeWrite(st.Table, sqlText, params)
	case *sql.Delete:
		if err := s.vetWriteExprs(st.Table, st.Where); err != nil {
			return nil, err
		}
		return s.routeWrite(st.Table, sqlText, params)
	case *sql.Select:
		// The broadcast branch would return only partition 0's result for a
		// fanned-out read; reads belong to the Query merge path.
		return s.querySelect(st, sqlText, params)
	default:
		// Anything else ad-hoc applies to every schema replica. (The
		// engine's prepared path rejects DDL, so this branch cannot mutate
		// the catalog; runtime schema changes go through ExecScript.)
		return s.broadcastExec(sqlText, params, false)
	}
}

// vetWriteExprs guards UPDATE / DELETE expressions: a broadcast write
// (partitioned or replicated target) evaluates subqueries per leg against
// local data, so subqueries over partitioned or partition-0-pinned
// relations would silently change which rows are touched. Writes pinned to
// partition 0 (unpartitioned stream target) still must not consult
// partitioned relations, whose data partition 0 holds only a shard of.
func (s *Store) vetWriteExprs(table string, exprs ...sql.Expr) error {
	s.routeMu.RLock()
	defer s.routeMu.RUnlock()
	cat := s.partList()[0].cat
	rel := cat.Relation(table)
	broadcast := rel == nil || rel.Partitioned() || rel.Kind == catalog.KindTable
	return fanoutSubqueryCheck(cat, broadcast, exprs...)
}

// routeWrite routes an UPDATE / DELETE by its target relation. Writes that
// touch every partition (hash-split data, replicated reference tables) run
// as one coordinated transaction: all legs commit or none.
func (s *Store) routeWrite(table, sqlText string, params []types.Value) (*pe.Result, error) {
	rel := s.routingRelation(table)
	switch {
	case rel == nil:
		return s.partList()[0].pe.Exec(sqlText, params...)
	case rel.Partitioned():
		return s.coordExecAll(sqlText, params, true)
	case rel.Kind == catalog.KindTable:
		return s.coordExecAll(sqlText, params, false)
	default:
		return s.partList()[0].pe.Exec(sqlText, params...)
	}
}

// broadcastExec runs the statement on every partition concurrently (the
// partitions are independent serial engines, exactly like the Query
// fan-out). With sum set the returned RowsAffected is the total across
// partitions (hash-split data); without it partition 0's count stands for
// the logical result (replicated data, where every partition affected the
// same logical rows).
//
// Only Exec's default branch (statements the prepared path rejects anyway,
// like DDL) still lands here: every routed DML write goes through the 2PC
// coordinator (coordwrite.go) and commits atomically across partitions.
// This uncoordinated fallback keeps its partial-apply guard as defense in
// depth, though with every leg failing identically it should not trigger.
func (s *Store) broadcastExec(sqlText string, params []types.Value, sum bool) (*pe.Result, error) {
	results := make([]*pe.Result, len(s.partList()))
	errs := make([]error, len(s.partList()))
	var wg sync.WaitGroup
	for i := range s.partList() {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.partList()[i].pe.Exec(sqlText, params...)
		}(i)
	}
	wg.Wait()
	applied := 0
	var firstErr error
	for _, err := range errs {
		if err == nil {
			applied++
		} else if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		if applied > 0 {
			return nil, fmt.Errorf("core: broadcast statement failed on %d of %d partitions but committed on the rest "+
				"(ad-hoc cross-partition writes are not atomic): %w", len(s.partList())-applied, len(s.partList()), firstErr)
		}
		return nil, firstErr
	}
	first := results[0]
	if sum && first != nil {
		total := 0
		for _, res := range results {
			if res != nil {
				total += res.RowsAffected
			}
		}
		first.RowsAffected = total
	}
	return first, nil
}

// insertColMap resolves the schema ordinal each supplied value of an
// INSERT feeds (identical to the engine's plan-time mapping, recomputed
// here because routing happens before any partition plans the statement).
func insertColMap(ins *sql.Insert, rel *catalog.Relation) ([]int, error) {
	if len(ins.Columns) == 0 {
		m := make([]int, rel.Schema.NumColumns())
		for i := range m {
			m[i] = i
		}
		return m, nil
	}
	m := make([]int, 0, len(ins.Columns))
	for _, c := range ins.Columns {
		ord := -1
		for i := 0; i < rel.Schema.NumColumns(); i++ {
			if strings.EqualFold(rel.Schema.Column(i).Name, c) {
				ord = i
				break
			}
		}
		if ord < 0 {
			return nil, fmt.Errorf("core: INSERT into %q: unknown column %q", rel.Name, c)
		}
		m = append(m, ord)
	}
	return m, nil
}

// insertPartValue resolves the partition-key value a tuple will be STORED
// with: the column DEFAULT replaces NULL and the value is coerced to the
// declared type, mirroring ValidateRow — routing must hash what the
// engine keeps ('5' and 5 land together; a defaulted key lands on the
// default's owner, not hash(NULL)'s).
func insertPartValue(rel *catalog.Relation, v types.Value) (types.Value, error) {
	col := rel.Schema.Column(rel.PartCol)
	if v.IsNull() && col.HasDeflt {
		v = col.Default
	}
	if v.IsNull() {
		return v, nil // stored as NULL (or rejected by NOT NULL in the leg)
	}
	cv, err := types.Coerce(v, col.Type)
	if err != nil {
		return types.Null, fmt.Errorf("core: INSERT into %q: partition key: %w", rel.Name, err)
	}
	return cv, nil
}

// insertTargets resolves the owning partition of every value tuple of an
// INSERT ... VALUES into a partitioned relation. Tuples hashing to one
// partition keep the routed fast path; a spanning set becomes a
// coordinated transaction.
func (s *Store) insertTargets(ins *sql.Insert, rel *catalog.Relation, colMap []int, params []types.Value) ([]int, error) {
	pos := -1
	for i, ord := range colMap {
		if ord == rel.PartCol {
			pos = i
			break
		}
	}
	if pos < 0 {
		return nil, fmt.Errorf("core: INSERT into partitioned %q must supply partition column %q",
			rel.Name, rel.Schema.Column(rel.PartCol).Name)
	}
	targets := make([]int, 0, len(ins.Rows))
	for _, row := range ins.Rows {
		if pos >= len(row) {
			return nil, fmt.Errorf("core: INSERT into %q: tuple has no value for partition column", rel.Name)
		}
		v, err := sql.StaticValue(row[pos], params)
		if err != nil {
			return nil, fmt.Errorf("core: partition key: %w", err)
		}
		if v, err = insertPartValue(rel, v); err != nil {
			return nil, err
		}
		targets = append(targets, s.partitionFor(v))
	}
	return targets, nil
}

// singleTarget reports whether every tuple routes to one partition.
func singleTarget(targets []int) (int, bool) {
	if len(targets) == 0 {
		return 0, true
	}
	for _, t := range targets[1:] {
		if t != targets[0] {
			return 0, false
		}
	}
	return targets[0], true
}

// staticInsertRows materializes the full-width row images of an
// INSERT ... VALUES so they can be carried to their owning partitions as
// coordinated row-batch legs. Every value must be statically evaluable
// (literal or parameter) — a spanning INSERT with computed expressions has
// no single partition that could evaluate them.
func (s *Store) staticInsertRows(ins *sql.Insert, rel *catalog.Relation, colMap []int, params []types.Value) ([]types.Row, error) {
	arity := rel.Schema.NumColumns()
	rows := make([]types.Row, 0, len(ins.Rows))
	for _, exprs := range ins.Rows {
		if len(exprs) != len(colMap) {
			return nil, fmt.Errorf("core: INSERT into %q expects %d values, got %d", rel.Name, len(colMap), len(exprs))
		}
		row := make(types.Row, arity)
		for i := range row {
			row[i] = types.Null
		}
		for i, e := range exprs {
			v, err := sql.StaticValue(e, params)
			if err != nil {
				return nil, fmt.Errorf("core: multi-partition INSERT into %q: %w", rel.Name, err)
			}
			row[colMap[i]] = v
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Query runs an ad-hoc read-only query. Queries touching only unpartitioned
// relations run on partition 0; queries over partitioned relations fan out
// to every partition and the results are merged (see mergePlan for the
// supported shapes).
func (s *Store) Query(sqlText string, params ...types.Value) (*pe.Result, error) {
	if res, handled, err := s.dataflowStatement(sqlText); handled {
		return res, err
	}
	if res, handled, err := s.adminStatement(sqlText); handled {
		return res, err
	}
	if len(s.partList()) == 1 {
		return s.queryPart0(sqlText, params)
	}
	stmt, err := sql.ParseCached(sqlText) // shared AST: treated read-only here
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sql.Select)
	if !ok {
		return s.queryPart0(sqlText, params)
	}
	return s.querySelect(sel, sqlText, params)
}

// queryPart0 runs a partition-0 query holding routeMu shared: snapshot
// SELECTs execute on this (caller) goroutine and read catalog maps and
// index sets, which runtime DDL (ExecScript, under routeMu exclusively)
// would otherwise mutate underneath them.
func (s *Store) queryPart0(sqlText string, params []types.Value) (*pe.Result, error) {
	s.routeMu.RLock()
	defer s.routeMu.RUnlock()
	return s.partList()[0].pe.Query(sqlText, params...)
}

// querySelect is Query after parsing; Exec reuses it for ad-hoc SELECTs so
// the text is not parsed twice.
func (s *Store) querySelect(sel *sql.Select, sqlText string, params []types.Value) (*pe.Result, error) {
	part, err := s.queryScope(sel)
	if err != nil {
		return nil, err
	}
	if !part {
		return s.queryPart0(sqlText, params)
	}
	plan, legSQL, legParams, err := fanoutLeg(sel, sqlText, params)
	if err != nil {
		return nil, err
	}
	// Acquire a consistent cross-partition snapshot: one pinned committed
	// sequence per partition, taken atomically against 2PC commit
	// publication (seqMu), so a coordinated write is visible on every
	// partition or on none. The legs then execute on this goroutine's
	// fan-out workers against those snapshots — no partition worker is
	// enqueued, and writers (including an in-flight 2PC transaction's
	// fragment phase) proceed concurrently. routeMu (shared) excludes
	// runtime DDL for the legs' catalog and index reads; queryScope above
	// released its own hold, so this is not a recursive read-lock.
	// The partition list is captured inside the same seqMu hold as the
	// sequence vector: a rebalance publishes an extended list, the new slot
	// table, and the migrated partitions' commit sequences in one seqMu
	// write-side window, so list and vector always describe the same cut.
	s.routeMu.RLock()
	s.seqMu.RLock()
	parts := s.partList()
	fs := fanoutPool.Get().(*fanoutScratch)
	fs.size(len(parts))
	defer fs.release()
	for i, p := range parts {
		fs.pins[i] = p.pe.AcquireSnapshot()
	}
	s.seqMu.RUnlock()
	defer func() {
		for i, p := range parts {
			p.pe.ReleaseSnapshot(fs.pins[i])
		}
	}()
	var wg sync.WaitGroup
	for i := range parts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fs.results[i], fs.errs[i] = parts[i].pe.QueryAtSeq(fs.pins[i].Seq(), legSQL, legParams...)
		}(i)
	}
	wg.Wait()
	s.routeMu.RUnlock()
	for _, err := range fs.errs {
		if err != nil {
			return nil, err
		}
	}
	// The merged HAVING evaluator binds the ORIGINAL parameter slice: its
	// Param indexes are positions in the client's statement, which stay
	// valid even when the legs had to inline parameters as literals.
	return plan.merge(sel, fs.results, params)
}

// fanoutScratch is the per-query buffer set of the snapshot fan-out: one
// pin, result slot, and error slot per partition. Pooled so a steady read
// load stops allocating them; every pointer is cleared on release so a
// pooled entry never keeps leg results alive.
type fanoutScratch struct {
	pins    []storage.SnapPin
	results []*pe.Result
	errs    []error
}

var fanoutPool = sync.Pool{New: func() any { return new(fanoutScratch) }}

func (fs *fanoutScratch) size(n int) {
	if cap(fs.pins) < n {
		fs.pins = make([]storage.SnapPin, n)
		fs.results = make([]*pe.Result, n)
		fs.errs = make([]error, n)
	}
	fs.pins = fs.pins[:n]
	fs.results = fs.results[:n]
	fs.errs = fs.errs[:n]
}

func (fs *fanoutScratch) release() {
	for i := range fs.pins {
		fs.pins[i] = storage.SnapPin{}
		fs.results[i] = nil
		fs.errs[i] = nil
	}
	fanoutPool.Put(fs)
}

// fanoutLeg computes the merge plan and the per-leg statement of a
// distributed SELECT. The leg statement differs from the client's text
// when AVG is pushed down (SUM + hidden COUNT per AVG), when HAVING is
// lifted above the merge (stripped, hidden aggregates appended), or when
// LIMIT under aggregation is withheld from the legs — all serialized from
// the rewritten AST via sql.FormatSelect. Shared by the query fan-out and
// the coordinator's transactional INSERT ... SELECT materialization.
func fanoutLeg(sel *sql.Select, sqlText string, params []types.Value) (*queryMerge, string, []types.Value, error) {
	plan, err := mergePlan(sel, params)
	if err != nil {
		return nil, "", nil, err
	}
	legSQL, legParams := sqlText, params
	if len(plan.avgHidden) > 0 || len(plan.extraItems) > 0 || len(plan.exprLeg) > 0 || plan.stripHaving || plan.stripLimit {
		var inlined bool
		legSQL, inlined, err = buildLegSQL(sel, plan, params)
		if err != nil {
			return nil, "", nil, err
		}
		if inlined {
			legParams = nil
		}
	}
	return plan, legSQL, legParams, nil
}

// queryScope reports whether the select references any partitioned
// relation, and rejects shapes a fan-out would silently evaluate wrong:
//
//   - Subqueries over partitioned relations see only partition-local data
//     inside each leg.
//   - Joins between two partitioned relations (including self-joins) lose
//     every match whose sides live on different partitions; only a single
//     partitioned relation joined against replicated reference tables is
//     co-located everywhere.
//   - Unpartitioned streams/windows exist only on partition 0, so joining
//     them into a fan-out leaves legs 1..N-1 empty.
func (s *Store) queryScope(sel *sql.Select) (partitioned bool, err error) {
	s.routeMu.RLock()
	defer s.routeMu.RUnlock()
	cat := s.partList()[0].cat
	isPart := func(name string) bool {
		rel := cat.Relation(name)
		return rel != nil && rel.Partitioned()
	}
	nPart, nLocal := 0, 0 // partitioned refs; partition-0-only refs
	classify := func(name string) {
		rel := cat.Relation(name)
		if rel == nil {
			return
		}
		switch {
		case rel.Partitioned():
			nPart++
		case rel.Kind != catalog.KindTable:
			nLocal++ // unpartitioned stream/window: data on partition 0 only
		}
	}
	classify(sel.From.Name)
	for _, j := range sel.Joins {
		classify(j.Table.Name)
		// LEFT JOIN onto a partitioned right side NULL-extends the outer
		// row on every leg that does not own the match — the merge would
		// keep both the real match and the spurious NULL row.
		if j.Left && isPart(j.Table.Name) {
			return false, fmt.Errorf("core: LEFT JOIN onto partitioned relation %q is not supported across partitions (non-owning partitions would emit spurious NULL-extended rows)", j.Table.Name)
		}
	}
	partitioned = nPart > 0
	if nPart > 1 {
		return false, fmt.Errorf("core: joining two partitioned relations is not supported across partitions (cross-partition matches would be lost); join against replicated tables or query per partition")
	}
	if nPart > 0 && nLocal > 0 {
		return false, fmt.Errorf("core: joining a partitioned relation with an unpartitioned stream or window is not supported across partitions (its tuples live on partition 0 only)")
	}
	// Subqueries anywhere in the statement (WHERE, HAVING, projection, JOIN
	// ON — and nested inside other subqueries) must not touch partitioned or
	// partition-0-pinned relations: each fan-out leg would evaluate them
	// against partition-local data.
	// Pinned streams/windows only break subqueries when the statement fans
	// out; a query running solely on partition 0 sees them in full.
	return partitioned, fanoutSubqueryCheck(cat, partitioned, selectExprs(sel)...)
}

// fanoutSubqueryCheck rejects subqueries (recursively — WalkExpr does not
// descend into InSubquery.Query) whose relations a distributed execution
// cannot see in full. Partitioned relations expose only the local shard in
// every leg; with rejectLocal set, partition-0-pinned streams/windows are
// also rejected because legs 1..N-1 see them empty (statements running
// solely on partition 0 may pass rejectLocal=false). The caller must hold
// routeMu (read) or otherwise own the catalog.
func fanoutSubqueryCheck(cat *catalog.Catalog, rejectLocal bool, exprs ...sql.Expr) error {
	var subErr error
	var checkExprs func(exprs ...sql.Expr)
	var checkSubSelect func(q *sql.Select)
	badRel := func(name string) {
		rel := cat.Relation(name)
		if rel == nil {
			return
		}
		switch {
		case rel.Partitioned():
			subErr = fmt.Errorf("core: subquery over partitioned relation %q is not supported across partitions", name)
		case rejectLocal && rel.Kind != catalog.KindTable:
			subErr = fmt.Errorf("core: subquery over unpartitioned stream/window %q is not supported across partitions (its tuples live on partition 0 only)", name)
		}
	}
	checkExprs = func(exprs ...sql.Expr) {
		for _, e := range exprs {
			sql.WalkExpr(e, func(x sql.Expr) {
				if sub, ok := x.(*sql.InSubquery); ok && sub.Query != nil {
					checkSubSelect(sub.Query)
				}
			})
		}
	}
	checkSubSelect = func(q *sql.Select) {
		badRel(q.From.Name)
		for _, j := range q.Joins {
			badRel(j.Table.Name)
		}
		checkExprs(selectExprs(q)...)
	}
	checkExprs(exprs...)
	return subErr
}

// vetSourceSelect guards INSERT ... SELECT routing: when the insert is
// broadcast to every replica (onlyReplicated), the SELECT must read
// replicated tables exclusively, or the replicas diverge — each would
// insert its own shard's rows. When the insert runs on partition 0 only,
// partitioned sources are still wrong (partition 0 holds just its shard),
// but pinned streams/windows are fine (partition 0 holds them in full).
func vetSourceSelect(cat *catalog.Catalog, q *sql.Select, onlyReplicated bool) error {
	check := func(name string) error {
		rel := cat.Relation(name)
		if rel == nil {
			return nil
		}
		if rel.Partitioned() {
			return fmt.Errorf("core: INSERT ... SELECT from partitioned relation %q is not routable; insert per partition", name)
		}
		if onlyReplicated && rel.Kind != catalog.KindTable {
			return fmt.Errorf("core: INSERT ... SELECT from stream/window %q into a replicated table is not routable (its tuples live on partition 0 only)", name)
		}
		return nil
	}
	if err := check(q.From.Name); err != nil {
		return err
	}
	for _, j := range q.Joins {
		if err := check(j.Table.Name); err != nil {
			return err
		}
	}
	return fanoutSubqueryCheck(cat, onlyReplicated, selectExprs(q)...)
}

// ---------- fan-out result merge ----------

// aggKind classifies one output column of a fanned-out query for the merge.
type aggKind uint8

const (
	aggKey   aggKind = iota // grouping / passthrough column
	aggCount                // combine by summing
	aggSum                  // combine by summing
	aggMin                  // combine by minimum
	aggMax                  // combine by maximum
	aggAvg                  // partial SUM in the leg; recombined with a hidden COUNT
)

// queryMerge is the combination plan for per-partition results.
type queryMerge struct {
	cols     []aggKind // nil when the projection is SELECT *
	hasAgg   bool
	distinct bool
	limit    int // -1 = no limit
	// AVG pushdown: partition-local averages cannot be recombined, so the
	// router rewrites each fan-out AVG(x) into SUM(x) at its original
	// position plus a hidden COUNT(x) appended to the projection, and the
	// merge divides. avgHidden maps the AVG item's position to its hidden
	// count column; outWidth is the client-visible projection width the
	// merged rows are trimmed back to.
	avgHidden map[int]int
	outWidth  int
	// HAVING pushup: a HAVING over aggregates filters partial groups if
	// run per leg, so the legs run without it (stripHaving) and having
	// filters the merged rows. Aggregates it references that the
	// projection does not already carry ride as hidden extraItems,
	// trimmed with the AVG counts.
	having      mergedExpr
	stripHaving bool
	extraItems  []sql.SelectItem
	// LIMIT under aggregation truncates partial groups per leg, so the
	// legs run without it (stripLimit) and the merge applies m.limit —
	// which is always re-applied after the merge regardless.
	stripLimit bool
	// Expression-over-aggregate pushdown (SELECT SUM(a)/COUNT(b) ...):
	// partition-local evaluation of such an expression is unmergeable, so
	// the legs project the expression's first aggregate at the item's
	// position (exprLeg) — a genuine partial, combined by its kind in
	// m.cols — any further aggregates it references resolve like HAVING's
	// (reusing a projected column or riding hidden), and exprCols
	// re-evaluates the full expression over each merged row before the
	// hidden columns are trimmed.
	exprCols map[int]mergedExpr
	exprLeg  map[int]sql.Expr
}

// firstAggregate returns the first aggregate call in expr's walk order,
// or nil when it contains none.
func firstAggregate(e sql.Expr) *sql.FuncCall {
	var first *sql.FuncCall
	sql.WalkExpr(e, func(x sql.Expr) {
		if first == nil {
			if fc, ok := x.(*sql.FuncCall); ok && sql.IsAggregate(fc.Name) {
				first = fc
			}
		}
	})
	return first
}

// classifyAggFunc maps a projected (or HAVING-referenced) aggregate call
// to its merge combinator, rejecting forms that cannot be recombined from
// partition-local partials.
func classifyAggFunc(f *sql.FuncCall) (aggKind, error) {
	if f.Distinct {
		return aggKey, fmt.Errorf("core: %s(DISTINCT ...) cannot be merged across partitions", f.Name)
	}
	switch strings.ToUpper(f.Name) {
	case "COUNT":
		return aggCount, nil
	case "SUM":
		return aggSum, nil
	case "MIN":
		return aggMin, nil
	case "MAX":
		return aggMax, nil
	case "AVG":
		if f.Star {
			return aggKey, fmt.Errorf("core: AVG(*) cannot be merged across partitions")
		}
		return aggAvg, nil // decomposed into SUM + hidden COUNT at fan-out
	default:
		return aggKey, fmt.Errorf("core: %s cannot be merged across partitions; compute SUM and COUNT instead", strings.ToUpper(f.Name))
	}
}

// mergePlan classifies the select's projection and clauses, rejecting
// shapes whose per-partition execution cannot be combined correctly.
func mergePlan(sel *sql.Select, params []types.Value) (*queryMerge, error) {
	m := &queryMerge{distinct: sel.Distinct, limit: -1}
	star := false
	type aggExprItem struct {
		pos   int
		expr  sql.Expr
		first *sql.FuncCall
	}
	var exprItems []aggExprItem
	for _, it := range sel.Items {
		if it.Star {
			star = true
			continue
		}
		k := aggKey
		if f, ok := it.Expr.(*sql.FuncCall); ok && sql.IsAggregate(f.Name) {
			var err error
			if k, err = classifyAggFunc(f); err != nil {
				return nil, err
			}
		} else if sql.ContainsAggregate(it.Expr) {
			// Expression over aggregates: classify the position by the
			// expression's first aggregate (what the legs will compute
			// here); compilation waits until the whole projection is
			// classified so hidden columns land after it.
			first := firstAggregate(it.Expr)
			var err error
			if k, err = classifyAggFunc(first); err != nil {
				return nil, err
			}
			exprItems = append(exprItems, aggExprItem{pos: len(m.cols), expr: it.Expr, first: first})
		}
		if k != aggKey {
			m.hasAgg = true
		}
		m.cols = append(m.cols, k)
	}
	if star {
		if m.hasAgg {
			return nil, fmt.Errorf("core: SELECT * mixed with aggregates cannot be merged across partitions")
		}
		if len(sel.GroupBy) > 0 {
			return nil, fmt.Errorf("core: SELECT * with GROUP BY cannot be merged across partitions")
		}
		m.cols = nil // unknown width: plain concatenation
	}
	m.outWidth = len(m.cols)
	if len(exprItems) > 0 && !star {
		m.exprCols = make(map[int]mergedExpr, len(exprItems))
		m.exprLeg = make(map[int]sql.Expr, len(exprItems))
		resolver := m.havingResolver(sel)
		for _, xi := range exprItems {
			pos, first := xi.pos, xi.first
			fn, err := compileMergeExpr(xi.expr, func(e sql.Expr) (int, bool, error) {
				if fc, ok := e.(*sql.FuncCall); ok && sql.IsAggregate(fc.Name) && mergeExprEqual(fc, first) {
					return pos, true, nil // the leg's partial at this position
				}
				return resolver(e)
			})
			if err != nil {
				return nil, err
			}
			m.exprCols[pos] = fn
			m.exprLeg[pos] = first
		}
	}
	// HAVING over aggregates filters partial per-partition groups if run in
	// the legs, so it is stripped there and applied to the merged groups
	// instead: each referenced aggregate resolves to a projected column or
	// rides as a hidden one. (Key-only HAVING on a non-aggregate grouped
	// select is leg-identical and stays pushed down.)
	if sel.Having != nil && (m.hasAgg || sql.ContainsAggregate(sel.Having)) {
		if star {
			return nil, fmt.Errorf("core: HAVING with aggregates needs an explicit projection to merge across partitions")
		}
		m.stripHaving = true
		pred, err := compileMergeExpr(sel.Having, m.havingResolver(sel))
		if err != nil {
			return nil, err
		}
		m.having = pred
		if len(m.extraItems) > 0 {
			m.hasAgg = true // hidden aggregates force the re-grouping merge
		}
	}
	for i, k := range m.cols {
		if k != aggAvg {
			continue
		}
		if m.avgHidden == nil {
			m.avgHidden = make(map[int]int)
		}
		m.avgHidden[i] = len(m.cols)
		m.cols = append(m.cols, aggCount)
	}
	if len(sel.GroupBy) > 0 && !star {
		// Every grouping key must be a projected column: the merge re-groups
		// on the output key columns, so a hidden key would collapse distinct
		// groups into one.
		for _, g := range sel.GroupBy {
			cr, ok := g.(*sql.ColumnRef)
			if !ok {
				return nil, fmt.Errorf("core: GROUP BY over an expression cannot be merged across partitions; group by a projected column")
			}
			// Only a bare projection of the same source column counts: the
			// engine binds GROUP BY keys in row scope, so an alias shadowing
			// a different expression (SELECT k % 3 AS k ... GROUP BY k)
			// would make the merge re-group on values the engine never
			// grouped by.
			found := false
			for i, it := range sel.Items {
				if m.cols[i] != aggKey {
					continue
				}
				if pc, ok := it.Expr.(*sql.ColumnRef); ok && strings.EqualFold(pc.Column, cr.Column) {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("core: GROUP BY key %q must be projected as a bare column to merge across partitions", cr.Column)
			}
		}
		// A grouped projection without aggregates is DISTINCT over the keys;
		// re-deduplicate the concatenated per-partition groups.
		if !m.hasAgg {
			m.distinct = true
		}
	}
	if m.hasAgg && sel.Distinct {
		return nil, fmt.Errorf("core: SELECT DISTINCT with aggregates cannot be merged across partitions")
	}
	if sel.Offset != nil {
		return nil, fmt.Errorf("core: OFFSET cannot be applied across partitions")
	}
	if sel.Limit != nil {
		// The limit is always re-applied to the merged result. Pushing it
		// into the legs is only a safe pre-filter for plain row selects
		// (each leg then returns a superset of what the merge keeps); under
		// aggregation a per-leg LIMIT would truncate partial groups, so the
		// legs run without it.
		v, err := sql.StaticValue(sel.Limit, params)
		if err != nil {
			return nil, fmt.Errorf("core: LIMIT across partitions: %w", err)
		}
		iv, err := types.Coerce(v, types.TypeInt)
		if err != nil || iv.IsNull() || iv.Int() < 0 {
			return nil, fmt.Errorf("core: LIMIT must be a non-negative integer, got %s", v)
		}
		m.limit = int(iv.Int())
		if m.hasAgg {
			m.stripLimit = true
		}
	}
	return m, nil
}

// havingResolver maps HAVING leaf expressions to merged-row columns:
// aggregates reuse an equal projected item or ride as hidden extra items;
// bare columns must name a projected group key (by alias or source
// column).
func (m *queryMerge) havingResolver(sel *sql.Select) func(sql.Expr) (int, bool, error) {
	return func(e sql.Expr) (int, bool, error) {
		if fc, ok := e.(*sql.FuncCall); ok && sql.IsAggregate(fc.Name) {
			k, err := classifyAggFunc(fc)
			if err != nil {
				return 0, false, err
			}
			for i, it := range sel.Items {
				if !it.Star && m.cols[i] != aggKey && mergeExprEqual(it.Expr, fc) {
					return i, true, nil
				}
			}
			for j, ex := range m.extraItems {
				if mergeExprEqual(ex.Expr, fc) {
					return m.outWidth + j, true, nil
				}
			}
			pos := len(m.cols)
			m.cols = append(m.cols, k)
			m.extraItems = append(m.extraItems, sql.SelectItem{Expr: fc})
			return pos, true, nil
		}
		if cr, ok := e.(*sql.ColumnRef); ok {
			for i, it := range sel.Items {
				if it.Star || m.cols[i] != aggKey {
					continue
				}
				if cr.Table == "" && it.Alias != "" && strings.EqualFold(it.Alias, cr.Column) {
					return i, true, nil
				}
				if pc, ok := it.Expr.(*sql.ColumnRef); ok && strings.EqualFold(pc.Column, cr.Column) &&
					(cr.Table == "" || strings.EqualFold(pc.Table, cr.Table)) {
					return i, true, nil
				}
			}
			return 0, false, fmt.Errorf("core: HAVING references %q, which must be projected as a group key to merge across partitions", cr.Column)
		}
		return 0, false, nil
	}
}

// selectExprs collects every expression position of a Select (WHERE,
// HAVING, projection items, join ON clauses) — the single traversal the
// cross-partition subquery guards share, so a future clause only needs
// threading in here.
func selectExprs(q *sql.Select) []sql.Expr {
	exprs := []sql.Expr{q.Where, q.Having}
	for _, it := range q.Items {
		exprs = append(exprs, it.Expr)
	}
	for _, j := range q.Joins {
		exprs = append(exprs, j.On)
	}
	return exprs
}

// buildLegSQL serializes the fan-out leg statement when it differs from
// the client's text: hidden HAVING aggregates are appended to the
// projection, each AVG item (projected or hidden) becomes SUM at its
// position plus an appended COUNT — in the order mergePlan recorded in
// avgHidden — and stripped clauses (HAVING, LIMIT under aggregation) are
// dropped.
//
// When the rewrite duplicates or reorders no '?' placeholder, the leg text
// preserves placeholders and binds the caller's params — one cached plan
// per statement shape; FormatSelectPlaceholders verifies this and the
// fallback inlines params as literals (inlined=true: execute with no
// params).
func buildLegSQL(sel *sql.Select, m *queryMerge, params []types.Value) (legSQL string, inlined bool, err error) {
	leg := *sel
	items := make([]sql.SelectItem, 0, len(m.cols))
	items = append(items, sel.Items...)
	items = append(items, m.extraItems...)
	// An expression-over-aggregates item runs post-merge; its leg slot
	// carries the expression's first aggregate (an AVG there is decomposed
	// by the loop below like any other).
	for pos, first := range m.exprLeg {
		items[pos] = sql.SelectItem{Expr: first, Alias: items[pos].Alias}
	}
	nBase := len(items)
	avgArgHasParam := false
	for i := 0; i < nBase; i++ {
		if m.cols[i] != aggAvg {
			continue
		}
		f, ok := items[i].Expr.(*sql.FuncCall)
		if !ok {
			return "", false, fmt.Errorf("core: internal: AVG merge column %d is not a function call", i)
		}
		for _, a := range f.Args {
			sql.WalkExpr(a, func(x sql.Expr) {
				if _, isParam := x.(*sql.Param); isParam {
					avgArgHasParam = true
				}
			})
		}
		items[i] = sql.SelectItem{Expr: &sql.FuncCall{Name: "SUM", Args: f.Args}, Alias: items[i].Alias}
		items = append(items, sql.SelectItem{Expr: &sql.FuncCall{Name: "COUNT", Args: f.Args}})
	}
	leg.Items = items
	if m.stripHaving {
		leg.Having = nil
	}
	if m.stripLimit {
		leg.Limit = nil
	}
	if !avgArgHasParam {
		if legSQL, err = sql.FormatSelectPlaceholders(&leg); err == nil {
			return legSQL, false, nil
		}
		// Placeholder order could not be preserved (a moved or stripped '?');
		// fall through to inlining.
	}
	legSQL, err = sql.FormatSelect(&leg, params)
	return legSQL, true, err
}

// finalizeAvgValues divides each merged partial SUM by its hidden COUNT
// (NULL over zero rows, matching the engine's AVG) in place. Hidden
// columns stay: the post-merge HAVING filter may still read them; trimHidden
// drops them afterwards.
func (m *queryMerge) finalizeAvgValues(rows []types.Row) {
	for _, row := range rows {
		for pos, hid := range m.avgHidden {
			sum, cnt := row[pos], row[hid]
			if sum.IsNull() || cnt.IsNull() || cnt.Int() == 0 {
				row[pos] = types.Null
				continue
			}
			row[pos] = types.NewFloat(sum.Float() / float64(cnt.Int()))
		}
	}
}

// finalizeExprValues overwrites each expression-over-aggregates position
// with the expression evaluated over the merged row. All of a row's
// expressions read before any write: an expression may reference its own
// position's partial (the leg-projected first aggregate).
func (m *queryMerge) finalizeExprValues(rows []types.Row, params []types.Value) error {
	poss := make([]int, 0, len(m.exprCols))
	for pos := range m.exprCols {
		poss = append(poss, pos)
	}
	sort.Ints(poss)
	vals := make([]types.Value, len(poss))
	for _, row := range rows {
		for j, pos := range poss {
			v, err := m.exprCols[pos](row, params)
			if err != nil {
				return err
			}
			vals[j] = v
		}
		for j, pos := range poss {
			row[pos] = vals[j]
		}
	}
	return nil
}

// trimHidden cuts the merged rows back to the client-visible projection
// width (dropping AVG counts and hidden HAVING aggregates) and restores
// the client-visible column names. The column slice is copied before
// renaming: the leg result's Columns aliases the EE's cached prepared
// plan, which must not be mutated.
func (m *queryMerge) trimHidden(sel *sql.Select, out *pe.Result) {
	if len(m.cols) > m.outWidth {
		for i := range out.Rows {
			out.Rows[i] = out.Rows[i][:m.outWidth]
		}
		cols := append([]string(nil), out.Columns...)
		if len(cols) >= m.outWidth {
			cols = cols[:m.outWidth]
		}
		out.Columns = cols
	}
	// An unaliased AVG item was executed as SUM in the legs; rename. An
	// unaliased expression item was executed as its first aggregate;
	// restore the engine's default expression column name.
	for pos := range m.avgHidden {
		if pos < len(sel.Items) && sel.Items[pos].Alias == "" && pos < len(out.Columns) {
			out.Columns[pos] = "avg"
		}
	}
	for pos := range m.exprCols {
		if pos < len(sel.Items) && sel.Items[pos].Alias == "" && pos < len(out.Columns) {
			out.Columns[pos] = "expr"
		}
	}
}

// merge combines the per-partition results according to the plan.
func (m *queryMerge) merge(sel *sql.Select, results []*pe.Result, params []types.Value) (*pe.Result, error) {
	out := &pe.Result{}
	for _, r := range results {
		if r == nil {
			continue
		}
		if out.Columns == nil {
			out.Columns = r.Columns
		}
	}
	if m.hasAgg {
		rows, err := m.mergeGroups(results)
		if err != nil {
			return nil, err
		}
		if len(m.avgHidden) > 0 {
			m.finalizeAvgValues(rows)
		}
		if len(m.exprCols) > 0 {
			if err := m.finalizeExprValues(rows, params); err != nil {
				return nil, err
			}
		}
		if m.having != nil {
			kept := rows[:0]
			for _, row := range rows {
				v, err := m.having(row, params)
				if err != nil {
					return nil, err
				}
				if v.IsTrue() {
					kept = append(kept, row)
				}
			}
			rows = kept
		}
		out.Rows = rows
		m.trimHidden(sel, out)
	} else {
		total := 0
		for _, r := range results {
			if r != nil {
				total += len(r.Rows)
			}
		}
		if total > 0 {
			out.Rows = make([]types.Row, 0, total)
		}
		for _, r := range results {
			if r != nil {
				out.Rows = append(out.Rows, r.Rows...)
			}
		}
		if m.distinct {
			out.Rows = dedupeRows(out.Rows)
		}
	}
	if len(sel.OrderBy) > 0 {
		if err := sortRows(sel, out); err != nil {
			return nil, err
		}
	}
	if m.limit >= 0 && len(out.Rows) > m.limit {
		out.Rows = out.Rows[:m.limit]
	}
	return out, nil
}

// mergeGroups re-aggregates grouped results: rows with equal key columns
// combine their aggregate columns (partition-local groups are partial).
// Group output order is first-seen across partitions; an ORDER BY re-sorts.
func (m *queryMerge) mergeGroups(results []*pe.Result) ([]types.Row, error) {
	var order []string
	groups := make(map[string]types.Row)
	var kb []byte // reused across rows; string(kb) map lookups don't allocate
	for _, r := range results {
		if r == nil {
			continue
		}
		for _, row := range r.Rows {
			if len(row) != len(m.cols) {
				return nil, fmt.Errorf("core: merge: result width %d != projection width %d", len(row), len(m.cols))
			}
			kb = kb[:0]
			for i, k := range m.cols {
				if k == aggKey {
					kb = appendKeyValue(kb, row[i])
					kb = append(kb, 0)
				}
			}
			acc, ok := groups[string(kb)]
			if !ok {
				key := string(kb)
				groups[key] = row.Clone()
				order = append(order, key)
				continue
			}
			for i, k := range m.cols {
				acc[i] = combineAgg(k, acc[i], row[i])
			}
		}
	}
	rows := make([]types.Row, 0, len(order))
	for _, key := range order {
		rows = append(rows, groups[key])
	}
	return rows, nil
}

// combineAgg folds one partition-local aggregate value into the
// accumulator. NULL (SUM/MIN/MAX over an empty partition) is the identity.
func combineAgg(k aggKind, acc, v types.Value) types.Value {
	if k == aggKey {
		return acc
	}
	if v.IsNull() {
		return acc
	}
	if acc.IsNull() {
		return v
	}
	switch k {
	case aggCount, aggSum, aggAvg: // aggAvg holds the leg's partial SUM
		if acc.Type() == types.TypeInt && v.Type() == types.TypeInt {
			return types.NewInt(acc.Int() + v.Int())
		}
		return types.NewFloat(acc.Float() + v.Float())
	case aggMin:
		if v.Compare(acc) < 0 {
			return v
		}
	case aggMax:
		if v.Compare(acc) > 0 {
			return v
		}
	}
	return acc
}

// dedupeRows removes duplicate rows (SELECT DISTINCT re-applied globally).
func dedupeRows(rows []types.Row) []types.Row {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	var kb []byte
	for _, r := range rows {
		kb = kb[:0]
		for _, v := range r {
			kb = appendKeyValue(kb, v)
			kb = append(kb, 0)
		}
		if seen[string(kb)] {
			continue
		}
		seen[string(kb)] = true
		out = append(out, r)
	}
	return out
}

// appendKeyValue appends a type-tagged encoding of v — allocation-free for
// every value type — used as a group/DISTINCT equality key. The tag keeps
// values of different types distinct (SQLLiteral renders INT 1 and DOUBLE
// 1.0 identically), which is safe: legs project a column with one type.
func appendKeyValue(kb []byte, v types.Value) []byte {
	kb = append(kb, byte(v.Type()))
	switch v.Type() {
	case types.TypeNull:
	case types.TypeBool:
		if v.IsTrue() {
			kb = append(kb, 1)
		} else {
			kb = append(kb, 0)
		}
	case types.TypeInt, types.TypeTimestamp:
		kb = strconv.AppendInt(kb, v.Int(), 10)
	case types.TypeFloat:
		kb = strconv.AppendFloat(kb, v.Float(), 'g', -1, 64)
	case types.TypeString:
		kb = append(kb, v.Str()...)
	default:
		kb = append(kb, v.SQLLiteral()...)
	}
	return kb
}

// sortRows re-applies the ORDER BY to the merged rows. Each order key must
// resolve to an output column: by alias, by projected column name, by
// result column name, or by 1-based ordinal literal.
func sortRows(sel *sql.Select, res *pe.Result) error {
	type orderKey struct {
		ord  int
		desc bool
	}
	// With a star in the projection, select-item indexes do not line up
	// with output ordinals (the star expands to an unknown width); resolve
	// order keys against the result's column names only.
	hasStar := false
	for _, it := range sel.Items {
		if it.Star {
			hasStar = true
		}
	}
	keys := make([]orderKey, 0, len(sel.OrderBy))
	for _, oi := range sel.OrderBy {
		ord := -1
		switch x := oi.Expr.(type) {
		case *sql.Literal:
			if x.Value.Type() == types.TypeInt {
				n := int(x.Value.Int())
				if n >= 1 && n <= len(res.Columns) {
					ord = n - 1
				}
			}
		case *sql.ColumnRef:
			if !hasStar {
				for i, it := range sel.Items {
					if it.Alias != "" && strings.EqualFold(it.Alias, x.Column) {
						ord = i
						break
					}
					if cr, ok := it.Expr.(*sql.ColumnRef); ok && strings.EqualFold(cr.Column, x.Column) &&
						(x.Table == "" || strings.EqualFold(cr.Table, x.Table)) {
						ord = i
						break
					}
				}
			}
			if ord < 0 {
				for i, c := range res.Columns {
					if strings.EqualFold(c, x.Column) {
						ord = i
						break
					}
				}
			}
		}
		if ord < 0 || ord >= len(res.Columns) {
			return fmt.Errorf("core: ORDER BY key does not name an output column; qualify it or use its ordinal")
		}
		keys = append(keys, orderKey{ord: ord, desc: oi.Desc})
	}
	sort.SliceStable(res.Rows, func(a, b int) bool {
		ra, rb := res.Rows[a], res.Rows[b]
		for _, k := range keys {
			c := ra[k.ord].Compare(rb[k.ord])
			if c != 0 {
				if k.desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	return nil
}

// runExclusiveAll holds every partition at its barrier simultaneously and
// runs fn once while the whole store is quiescent — the all-partition
// generalization of pe.Engine.RunExclusive that Checkpoint builds on.
func (s *Store) runExclusiveAll(fn func() error) error {
	// exclMu is taken even for a single partition: the list is captured
	// under it, so a concurrent rebalance (which grows the list at its own
	// exclusive barrier) cannot leave this barrier holding a stale subset.
	s.exclMu.Lock()
	defer s.exclMu.Unlock()
	parts := s.partList()
	// Every 2PC enlistment slot is acquired (ascending) BEFORE any worker
	// is parked: a coordinator mid-protocol holds slots and needs its
	// enlisted workers to make progress, so parking workers first could
	// deadlock against it. With all slots held, no coordinator is
	// mid-protocol and none can start until the barrier releases.
	// Coordinators never block on a slot below one they hold (txncoord.go),
	// so this ascending sweep cannot deadlock against them either.
	acquireAllSlots(parts)
	defer releaseAllSlots(parts)
	n := len(parts)
	if n == 1 {
		return parts[0].pe.RunExclusive(fn)
	}
	var entered sync.WaitGroup
	entered.Add(n)
	release := make(chan struct{})
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reached := false
			errs[i] = parts[i].pe.RunExclusive(func() error {
				reached = true
				entered.Done()
				<-release
				return nil
			})
			if !reached {
				entered.Done() // engine refused the barrier; unblock fn
			}
		}(i)
	}
	var fnErr error
	reached0 := false
	errs[0] = parts[0].pe.RunExclusive(func() error {
		reached0 = true
		entered.Done()
		entered.Wait() // every partition parked at its barrier
		fnErr = fn()
		return fnErr
	})
	if !reached0 {
		entered.Done()
	}
	close(release)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return fnErr // errs[0] already covers fn's error; this is the nil path
}
