package core

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/pe"
	"repro/internal/types"
	"repro/internal/wal"
)

// gcTestConfig is the group-commit configuration the tests share: a short
// interval so futures resolve promptly, a small batch so the batch-full
// path also fires.
func gcTestConfig(dir string, parts int) Config {
	return Config{
		Dir:                 dir,
		Sync:                wal.SyncGroupCommit,
		GroupCommitInterval: 500 * time.Microsecond,
		GroupCommitMaxBatch: 8,
		Partitions:          parts,
	}
}

// buildKV assembles a store with a hash-partitioned kv table and a "put"
// procedure routed by its key parameter — the minimal durable OLTP app the
// crash tests drive.
func buildKV(t *testing.T, cfg Config) *Store {
	t.Helper()
	st := Open(cfg)
	if err := st.ExecScript(`CREATE TABLE kv (k BIGINT PRIMARY KEY, v BIGINT) PARTITION BY k;`); err != nil {
		t.Fatal(err)
	}
	if err := st.RegisterProcedure(&pe.Procedure{
		Name:           "put",
		WriteSet:       []string{"kv"},
		PartitionParam: 1,
		Handler: func(ctx *pe.ProcCtx) error {
			_, err := ctx.Exec("INSERT INTO kv VALUES (?, ?)", ctx.Params[0], ctx.Params[1])
			return err
		},
	}); err != nil {
		t.Fatal(err)
	}
	return st
}

// recoveredKeys recovers a store from dir and returns the set of kv keys.
func recoveredKeys(t *testing.T, dir string, parts int) map[int64]bool {
	t.Helper()
	st := buildKV(t, gcTestConfig(dir, parts))
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	res, err := st.Query("SELECT k FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	keys := make(map[int64]bool, len(res.Rows))
	for _, r := range res.Rows {
		keys[r[0].Int()] = true
	}
	return keys
}

// copyDurableState snapshots the durability directory's current on-disk
// bytes into dst, mid-write races and all — exactly what a crash preserves.
// Reading while the engine appends may capture a torn final frame, which is
// the torn-tail case recovery must drop.
//
// The coordinator log is copied FIRST: a decision record present in the
// copy was forced before any partition log was read, and every PREPARE it
// covers was forced before the decision — so the copy can never hold a
// decision whose prepared legs it misses. (Copying it last could: a
// transaction preparing after a partition's copy and deciding before the
// coordinator's would recover half-applied, a state no single-instant
// crash produces.)
func copyDurableState(t *testing.T, src, dst string, parts int) {
	t.Helper()
	if data, err := os.ReadFile(wal.CoordPath(src)); err == nil {
		if err := os.WriteFile(wal.CoordPath(dst), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < parts; i++ {
		logPath, _ := wal.PartitionPaths(src, i)
		dstLog, _ := wal.PartitionPaths(dst, i)
		data, err := os.ReadFile(logPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dstLog, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	stamp, err := os.ReadFile(src + "/PARTITIONS")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst+"/PARTITIONS", stamp, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitAckedSubsetRecovered is the command-log contract under
// group commit: every transaction acknowledged to a client before the
// crash point must be recovered (acked ⊆ recovered), while unacked work
// may be silently dropped (torn-tail rule). The "crash" is a byte-level
// copy of the log segments taken while the second wave of calls is still
// in flight.
func TestGroupCommitAckedSubsetRecovered(t *testing.T) {
	const parts = 2
	const wave = 200
	dir, crashDir := t.TempDir(), t.TempDir()
	st := buildKV(t, gcTestConfig(dir, parts))
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}

	// Wave 1: fire and wait for every acknowledgement. These are durable by
	// contract the moment the ack arrives.
	acked := make(map[int64]bool, wave)
	var pending []<-chan pe.CallResult
	for k := int64(0); k < wave; k++ {
		pending = append(pending, st.CallAsync("put", types.NewInt(k), types.NewInt(k*10)))
	}
	for k, ch := range pending {
		if cr := <-ch; cr.Err != nil {
			t.Fatalf("wave-1 put %d: %v", k, cr.Err)
		}
		acked[int64(k)] = true
	}

	// Wave 2: in flight while the "crash" snapshot is taken. None of these
	// are in the acked set; any prefix of them may survive.
	var wave2 []<-chan pe.CallResult
	for k := int64(wave); k < 2*wave; k++ {
		wave2 = append(wave2, st.CallAsync("put", types.NewInt(k), types.NewInt(k*10)))
	}
	copyDurableState(t, dir, crashDir, parts)
	for _, ch := range wave2 {
		<-ch // let the engine finish cleanly; the copy is already taken
	}
	if err := st.Stop(); err != nil {
		t.Fatal(err)
	}

	got := recoveredKeys(t, crashDir, parts)
	for k := range acked {
		if !got[k] {
			t.Fatalf("key %d was acked before the crash but not recovered (acked ⊄ recovered)", k)
		}
	}
	for k := range got {
		if k < 0 || k >= 2*wave {
			t.Fatalf("recovered key %d was never written", k)
		}
	}
}

// TestGroupCommitTornTailDropped chops bytes off a mid-run log copy and
// verifies recovery still succeeds, dropping only the torn suffix.
func TestGroupCommitTornTailDropped(t *testing.T) {
	dir, crashDir := t.TempDir(), t.TempDir()
	st := buildKV(t, gcTestConfig(dir, 1))
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 50; k++ {
		if _, err := st.Call("put", types.NewInt(k), types.NewInt(k)); err != nil {
			t.Fatal(err)
		}
	}
	copyDurableState(t, dir, crashDir, 1)
	if err := st.Stop(); err != nil {
		t.Fatal(err)
	}
	// Tear the copied log mid-frame.
	logPath, _ := wal.Paths(crashDir)
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logPath, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	got := recoveredKeys(t, crashDir, 1)
	if len(got) == 0 || len(got) >= 50 {
		t.Fatalf("torn-tail recovery kept %d of 50 records; want a proper prefix", len(got))
	}
	// The survivors must be exactly the keys 0..n-1 (log order), no holes.
	for k := int64(0); k < int64(len(got)); k++ {
		if !got[k] {
			t.Fatalf("recovered set has a hole at key %d: %v", k, got)
		}
	}
}

// TestGroupCommitCheckpointUnderLoad hammers CallAsync across partitions
// while checkpoints run concurrently: the all-partition barrier must drain
// pending commit futures before each snapshot+truncate, and the final
// recovered state must hold every acknowledged key. Run with -race this
// also shakes out pipeline data races.
func TestGroupCommitCheckpointUnderLoad(t *testing.T) {
	const parts = 4
	const writers = 4
	const perWriter = 150
	dir := t.TempDir()
	st := buildKV(t, gcTestConfig(dir, parts))
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := int64(w*perWriter + i)
				if cr := <-st.CallAsync("put", types.NewInt(k), types.NewInt(k)); cr.Err != nil {
					errCh <- fmt.Errorf("put %d: %w", k, cr.Err)
					return
				}
			}
		}(w)
	}
	ckDone := make(chan struct{})
	go func() {
		defer close(ckDone)
		for i := 0; i < 6; i++ {
			if err := st.Checkpoint(); err != nil {
				errCh <- fmt.Errorf("checkpoint: %w", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	wg.Wait()
	<-ckDone
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	res, err := st.Query("SELECT COUNT(*) FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Rows[0][0].Int(); n != writers*perWriter {
		t.Fatalf("live store holds %d keys, want %d", n, writers*perWriter)
	}
	if err := st.Stop(); err != nil {
		t.Fatal(err)
	}

	// Every call was acked, so recovery must reproduce the full set.
	got := recoveredKeys(t, dir, parts)
	if len(got) != writers*perWriter {
		t.Fatalf("recovered %d keys, want %d", len(got), writers*perWriter)
	}
}

// TestGroupCommitExplicitSyncPoliciesAgree runs the same workload under
// every sync policy and verifies identical recovered state after a clean
// stop — group commit changes when durability happens, never what is
// durable at a quiescent point.
func TestGroupCommitExplicitSyncPoliciesAgree(t *testing.T) {
	want := fmt.Sprint(map[int64]bool{0: true, 1: true, 2: true, 3: true, 4: true})
	for _, pol := range []wal.SyncPolicy{wal.SyncNever, wal.SyncEveryRecord, wal.SyncGroupCommit} {
		dir := t.TempDir()
		cfg := gcTestConfig(dir, 1)
		cfg.Sync = pol
		st := buildKV(t, cfg)
		if err := st.Start(); err != nil {
			t.Fatal(err)
		}
		for k := int64(0); k < 5; k++ {
			if _, err := st.Call("put", types.NewInt(k), types.NewInt(k)); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Stop(); err != nil {
			t.Fatal(err)
		}
		if got := fmt.Sprint(recoveredKeys(t, dir, 1)); got != want {
			t.Fatalf("policy %d recovered %s, want %s", pol, got, want)
		}
	}
}
