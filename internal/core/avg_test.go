package core

import (
	"strings"
	"testing"

	"repro/internal/types"
)

// buildAvgStore loads the partitioned totals table with uneven per-key
// values via routed INSERTs so partition-local averages differ from the
// global one — the case naive AVG merging gets wrong.
func buildAvgStore(t *testing.T, parts int) *Store {
	t.Helper()
	st := buildPartApp(t, Config{Partitions: parts})
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Stop() })
	for k := int64(0); k < 10; k++ {
		if _, err := st.Exec("INSERT INTO totals (k, n) VALUES (?, ?)",
			types.NewInt(k), types.NewInt(k*k)); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func TestAvgPushdownGlobal(t *testing.T) {
	single := buildAvgStore(t, 1)
	multi := buildAvgStore(t, 4)
	want, err := single.Query("SELECT AVG(n) FROM totals")
	if err != nil {
		t.Fatal(err)
	}
	got, err := multi.Query("SELECT AVG(n) FROM totals")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Rows[0][0].Equal(want.Rows[0][0]) {
		t.Fatalf("fan-out AVG = %v, single-partition reference = %v", got.Rows[0][0], want.Rows[0][0])
	}
	// Σ k² for k=0..9 is 285, over 10 rows.
	if got.Rows[0][0].Float() != 28.5 {
		t.Fatalf("AVG(n) = %v want 28.5", got.Rows[0][0])
	}
	// The hidden COUNT column must not leak, and the unaliased AVG keeps
	// the engine's output name.
	if len(got.Columns) != 1 || got.Columns[0] != "avg" {
		t.Fatalf("columns = %v", got.Columns)
	}
	if len(got.Rows[0]) != 1 {
		t.Fatalf("row width = %d", len(got.Rows[0]))
	}
}

func TestAvgPushdownMixedAggregates(t *testing.T) {
	st := buildAvgStore(t, 4)
	res, err := st.Query("SELECT COUNT(*), AVG(n) AS mean, SUM(n), MAX(n) FROM totals")
	if err != nil {
		t.Fatal(err)
	}
	r := res.Rows[0]
	if r[0].Int() != 10 || r[1].Float() != 28.5 || r[2].Int() != 285 || r[3].Int() != 81 {
		t.Fatalf("mixed agg row = %v", r)
	}
	if res.Columns[1] != "mean" {
		t.Fatalf("aliased AVG column = %v", res.Columns)
	}
}

func TestAvgPushdownGroupBy(t *testing.T) {
	st := buildAvgStore(t, 4)
	// Two rows per key bucket: add 10 more rows reusing k via a second
	// keyspace is impossible (k is the primary key), so group on a derived
	// bucket column instead — rejected (GROUP BY must be a projected bare
	// column), which keeps this test on per-key groups.
	res, err := st.Query("SELECT k, AVG(n) FROM totals GROUP BY k ORDER BY k")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("groups = %v", res.Rows)
	}
	for i, r := range res.Rows {
		if r[0].Int() != int64(i) || r[1].Float() != float64(i*i) {
			t.Fatalf("group %d = %v", i, r)
		}
	}
}

func TestAvgPushdownWithParams(t *testing.T) {
	st := buildAvgStore(t, 4)
	// A parameter inside the AVG argument forces literal inlining (the
	// hidden COUNT duplicates it); binding must survive the rewrite.
	res, err := st.Query("SELECT AVG(n + ?) FROM totals WHERE k >= ?",
		types.NewInt(100), types.NewInt(8))
	if err != nil {
		t.Fatal(err)
	}
	// k=8,9 → n=64,81 → avg(164, 181) = 172.5
	if got := res.Rows[0][0].Float(); got != 172.5 {
		t.Fatalf("AVG with params = %v want 172.5", got)
	}
	// String params must survive quoting through the rewrite.
	res, err = st.Query("SELECT AVG(n) FROM totals WHERE 'it''s' = ?", types.NewString("it's"))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Float(); got != 28.5 {
		t.Fatalf("AVG with string param = %v want 28.5", got)
	}
	// Parameters outside the AVG argument keep their placeholders (one
	// cached plan per shape): successive values must bind correctly.
	for _, c := range []struct {
		lo   int64
		want float64
	}{{8, 72.5}, {9, 81}, {0, 28.5}} {
		res, err := st.Query("SELECT AVG(n) FROM totals WHERE k >= ?", types.NewInt(c.lo))
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Rows[0][0].Float(); got != c.want {
			t.Fatalf("AVG(n) k>=%d = %v want %v", c.lo, got, c.want)
		}
	}
}

// TestAvgPushdownDoesNotCorruptCachedPlans guards against the merge
// mutating shared state: the leg result's Columns slice aliases the EE's
// cached prepared plan, so renaming the AVG column must work on a copy. A
// later client query with the rewritten leg's exact shape must keep its
// own column names.
func TestAvgPushdownDoesNotCorruptCachedPlans(t *testing.T) {
	st := buildAvgStore(t, 4)
	if _, err := st.Query("SELECT AVG(n) FROM totals"); err != nil {
		t.Fatal(err)
	}
	res, err := st.Query("SELECT SUM(n), COUNT(n) FROM totals")
	if err != nil {
		t.Fatal(err)
	}
	if res.Columns[0] != "sum" || res.Columns[1] != "count" {
		t.Fatalf("cached plan columns corrupted by AVG merge: %v", res.Columns)
	}
}

func TestAvgPushdownEmptyInput(t *testing.T) {
	st := buildAvgStore(t, 4)
	res, err := st.Query("SELECT AVG(n) FROM totals WHERE k > 1000")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[0][0].IsNull() {
		t.Fatalf("AVG over empty input = %v want NULL", res.Rows[0][0])
	}
}

func TestAvgDistinctStillRejected(t *testing.T) {
	st := buildAvgStore(t, 4)
	if _, err := st.Query("SELECT AVG(DISTINCT n) FROM totals"); err == nil ||
		!strings.Contains(err.Error(), "DISTINCT") {
		t.Fatalf("AVG(DISTINCT) err = %v", err)
	}
	// Expressions over AVG merge via the post-merge evaluator: the legs
	// ship the decomposed SUM + COUNT, the router divides, then applies
	// the surrounding expression.
	avg, err := st.Query("SELECT AVG(n) FROM totals")
	if err != nil {
		t.Fatal(err)
	}
	plus, err := st.Query("SELECT AVG(n) + 1 FROM totals")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := plus.Rows[0][0].Float(), avg.Rows[0][0].Float()+1; got != want {
		t.Fatalf("AVG(n) + 1 = %v, want %v", got, want)
	}
}
