package core

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/pe"
	"repro/internal/types"
)

const dfDDL = `
	CREATE TABLE sink (k INT PRIMARY KEY, n BIGINT DEFAULT 0) PARTITION BY k;
	CREATE STREAM feed (k INT, amt BIGINT) PARTITION BY k;
	CREATE STREAM mid (k INT, amt BIGINT) PARTITION BY k;
`

// dfStore builds a store with a two-stage absorb pipeline's schema and
// procedures registered but nothing deployed.
func dfStore(t testing.TB, cfg Config) *Store {
	t.Helper()
	st := Open(cfg)
	if err := st.ExecScript(dfDDL); err != nil {
		t.Fatal(err)
	}
	if err := st.RegisterProcedure(&pe.Procedure{
		Name:     "df_stage1",
		WriteSet: []string{"mid"},
		Handler: func(ctx *pe.ProcCtx) error {
			for _, r := range ctx.Batch {
				if err := ctx.Emit("mid", r); err != nil {
					return err
				}
			}
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.RegisterProcedure(&pe.Procedure{
		Name:     "df_stage2",
		WriteSet: []string{"sink"},
		Handler: func(ctx *pe.ProcCtx) error {
			for _, r := range ctx.Batch {
				res, err := ctx.Exec("UPDATE sink SET n = n + ? WHERE k = ?", r[1], r[0])
				if err != nil {
					return err
				}
				if res.RowsAffected == 0 {
					if _, err := ctx.Exec("INSERT INTO sink VALUES (?, ?)", r[0], r[1]); err != nil {
						return err
					}
				}
			}
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	return st
}

func pipelineDF() *Dataflow {
	return &Dataflow{
		Name: "pipeline",
		Nodes: []DataflowNode{
			{Proc: "df_stage1", Input: "feed", Batch: 2, Emits: []string{"mid"}},
			{Proc: "df_stage2", Input: "mid", Batch: 1},
		},
	}
}

// TestDeployValidation drives every whole-graph check and then proves the
// rejected deploys left no partition partially wired: after all the
// failures, ingest still reports the stream unbound on every partition and
// the corrected graph deploys cleanly.
func TestDeployValidation(t *testing.T) {
	st := dfStore(t, Config{Partitions: 2})
	bad := []struct {
		name string
		df   *Dataflow
		want string
	}{
		{"no name", &Dataflow{}, "needs a name"},
		{"empty graph", &Dataflow{Name: "empty"}, "at least one node"},
		{"unknown proc", &Dataflow{Name: "g", Nodes: []DataflowNode{
			{Proc: "nosuch", Input: "feed", Batch: 1}}}, "unknown procedure"},
		{"unknown stream", &Dataflow{Name: "g", Nodes: []DataflowNode{
			{Proc: "df_stage1", Input: "nosuch", Batch: 1}}}, "unknown stream"},
		{"table as input", &Dataflow{Name: "g", Nodes: []DataflowNode{
			{Proc: "df_stage1", Input: "sink", Batch: 1}}}, "is a TABLE"},
		{"bad batch", &Dataflow{Name: "g", Nodes: []DataflowNode{
			{Proc: "df_stage1", Input: "feed", Batch: 0}}}, "batch size 0"},
		{"negative batch", &Dataflow{Name: "g", Nodes: []DataflowNode{
			{Proc: "df_stage1", Input: "feed", Batch: -3}}}, "batch size -3"},
		{"batch without input", &Dataflow{Name: "g", Nodes: []DataflowNode{
			{Proc: "df_stage1", Batch: 4}}}, "no input stream but declares batch size"},
		{"double consumer", &Dataflow{Name: "g", Nodes: []DataflowNode{
			{Proc: "df_stage1", Input: "feed", Batch: 1},
			{Proc: "df_stage2", Input: "feed", Batch: 1}}}, "already has a consumer in the graph"},
		{"duplicate node proc", &Dataflow{Name: "g", Nodes: []DataflowNode{
			{Proc: "df_stage1", Input: "feed", Batch: 1},
			{Proc: "df_stage1", Input: "mid", Batch: 1}}}, "more than one node"},
		{"unknown emit", &Dataflow{Name: "g", Nodes: []DataflowNode{
			{Proc: "df_stage1", Input: "feed", Batch: 1, Emits: []string{"nosuch"}}}}, "unknown stream"},
		{"cycle", &Dataflow{Name: "g", Nodes: []DataflowNode{
			{Proc: "df_stage1", Input: "feed", Batch: 1, Emits: []string{"mid"}},
			{Proc: "df_stage2", Input: "mid", Batch: 1, Emits: []string{"feed"}}}}, "cycle"},
		{"unknown trigger relation", &Dataflow{Name: "g", Triggers: []DataflowTrigger{
			{Name: "tg", Relation: "nosuch", Bodies: []string{"DELETE FROM sink"}}}}, "does not exist"},
		{"trigger without body", &Dataflow{Name: "g", Triggers: []DataflowTrigger{
			{Name: "tg", Relation: "feed"}}}, "at least one body"},
		{"bad trigger body", &Dataflow{Name: "g", Triggers: []DataflowTrigger{
			{Name: "tg", Relation: "feed", Bodies: []string{"INSERT INTO nosuch SELECT * FROM new"}}}}, "body"},
	}
	for _, tc := range bad {
		err := st.Deploy(tc.df)
		if err == nil {
			t.Fatalf("%s: deploy succeeded, want error containing %q", tc.name, tc.want)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
	// Nothing was wired by any failed attempt, on any partition.
	for i := 0; i < st.NumPartitions(); i++ {
		for _, stream := range []string{"feed", "mid"} {
			if err := st.PEAt(i).Ingest(stream, types.Row{types.NewInt(1), types.NewInt(1)}); err == nil ||
				!strings.Contains(err.Error(), "no bound procedure") {
				t.Fatalf("partition %d: stream %s unexpectedly wired after failed deploys: %v", i, stream, err)
			}
		}
	}
	if got := len(st.Dataflows()); got != 0 {
		t.Fatalf("failed deploys left %d dataflows registered", got)
	}
	// The corrected graph deploys cleanly over the same names.
	if err := st.Deploy(pipelineDF()); err != nil {
		t.Fatalf("corrected deploy: %v", err)
	}
	if err := st.Deploy(pipelineDF()); err == nil || !strings.Contains(err.Error(), "already deployed") {
		t.Fatalf("duplicate graph name not rejected: %v", err)
	}
	// Streams consumed by a deployed graph cannot be claimed again.
	err := st.Deploy(&Dataflow{Name: "rival", Nodes: []DataflowNode{
		{Proc: "df_stage2", Input: "feed", Batch: 1}}})
	if err == nil || !strings.Contains(err.Error(), `in dataflow "pipeline"`) {
		t.Fatalf("cross-graph double consumer not rejected: %v", err)
	}
}

// TestDeployRunsEndToEnd deploys the two-stage pipeline on a partitioned
// store and checks the per-graph counters and catalog introspection.
func TestDeployRunsEndToEnd(t *testing.T) {
	st := dfStore(t, Config{Partitions: 2})
	if err := st.Deploy(pipelineDF()); err != nil {
		t.Fatal(err)
	}
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	for i := 0; i < 10; i++ {
		if err := st.Ingest("feed", types.Row{types.NewInt(int64(i)), types.NewInt(1)}); err != nil {
			t.Fatal(err)
		}
	}
	st.FlushBatches()
	st.Drain()
	res, err := st.Query("SELECT SUM(n) FROM sink")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != 10 {
		t.Fatalf("sink sum = %d, want 10", got)
	}
	gs := st.Metrics().Graph("pipeline")
	if gs.Batches.Load() == 0 || gs.Triggered.Load() == 0 {
		t.Fatalf("graph counters not maintained: batches=%d triggered=%d",
			gs.Batches.Load(), gs.Triggered.Load())
	}
	if gs.Latency().Count() == 0 {
		t.Fatal("graph latency histogram empty")
	}

	// SHOW DATAFLOWS through the ad-hoc query path.
	show, err := st.Query("SHOW DATAFLOWS")
	if err != nil {
		t.Fatal(err)
	}
	if len(show.Rows) != 1 || show.Rows[0][0].Str() != "pipeline" {
		t.Fatalf("SHOW DATAFLOWS rows: %v", show.Rows)
	}
	if state := show.Rows[0][1].Str(); state != "running" {
		t.Fatalf("state = %q, want running", state)
	}

	// EXPLAIN DATAFLOW renders nodes, classification, and constraints.
	exp, err := st.Query("EXPLAIN DATAFLOW pipeline")
	if err != nil {
		t.Fatal(err)
	}
	text := exp.Rows[0][0].Str()
	for _, want := range []string{
		"df_stage1", "<- feed [batch 2] (border)",
		"df_stage2", "<- mid [batch 1] (interior, from df_stage1)",
		"border streams  : feed",
		"interior streams: mid",
		"natural order",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("explain output missing %q:\n%s", want, text)
		}
	}
}

// TestDeploySerialConstraintReport checks the deploy-time shared-writable
// report, and that ModeFIFO rejects such a graph outright.
func TestDeploySerialConstraintReport(t *testing.T) {
	build := func(cfg Config) (*Store, error) {
		st := Open(cfg)
		if err := st.ExecScript(`
			CREATE TABLE shared (k INT PRIMARY KEY, n BIGINT DEFAULT 0);
			CREATE STREAM a (k INT);
			CREATE STREAM b (k INT);
		`); err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"w1", "w2"} {
			if err := st.RegisterProcedure(&pe.Procedure{
				Name:     name,
				WriteSet: []string{"shared"},
				Handler:  func(ctx *pe.ProcCtx) error { return nil },
			}); err != nil {
				t.Fatal(err)
			}
		}
		return st, st.Deploy(&Dataflow{Name: "g", Nodes: []DataflowNode{
			{Proc: "w1", Input: "a", Batch: 1, Emits: []string{"b"}},
			{Proc: "w2", Input: "b", Batch: 1},
		}})
	}
	st, err := build(Config{})
	if err != nil {
		t.Fatal(err)
	}
	df := st.Dataflows()[0]
	if len(df.SerialTables) != 1 || df.SerialTables[0] != "shared" {
		t.Fatalf("SerialTables = %v, want [shared]", df.SerialTables)
	}
	text, err := st.ExplainDataflow("g")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "serial execution forced") || !strings.Contains(text, "shared") {
		t.Fatalf("explain missing serial constraint:\n%s", text)
	}
	if _, err := build(Config{Mode: pe.ModeFIFO}); err == nil ||
		!strings.Contains(err.Error(), "serial") {
		t.Fatalf("ModeFIFO deploy over shared writable tables not rejected: %v", err)
	}
}

// TestPauseResumeLosesNoBatches hammers a paused/resumed graph with
// concurrent ingest and checks every tuple is eventually processed exactly
// once (run under -race in CI).
func TestPauseResumeLosesNoBatches(t *testing.T) {
	st := dfStore(t, Config{Partitions: 2})
	if err := st.Deploy(pipelineDF()); err != nil {
		t.Fatal(err)
	}
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	defer st.Stop()

	const (
		writers  = 4
		perWrite = 200
	)
	var sent atomic.Int64
	var writerWG, pauserWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWrite; i++ {
				k := int64(w*perWrite + i)
				if err := st.Ingest("feed", types.Row{types.NewInt(k), types.NewInt(1)}); err != nil {
					t.Errorf("ingest: %v", err)
					return
				}
				sent.Add(1)
			}
		}(w)
	}
	// Pause/resume concurrently with the writers.
	pauserWG.Add(1)
	go func() {
		defer pauserWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := st.PauseDataflow("pipeline"); err != nil {
				t.Errorf("pause: %v", err)
				return
			}
			if err := st.ResumeDataflow("pipeline"); err != nil {
				t.Errorf("resume: %v", err)
				return
			}
		}
	}()
	writerWG.Wait()
	close(stop)
	pauserWG.Wait()
	if err := st.ResumeDataflow("pipeline"); err != nil { // lift any final pause
		t.Fatal(err)
	}
	st.FlushBatches()
	st.Drain()
	res, err := st.Query("SELECT SUM(n), COUNT(*) FROM sink")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != sent.Load() {
		t.Fatalf("sink sum = %d, want %d (batches lost or duplicated across pause/resume)", got, sent.Load())
	}
}

// TestPauseQueuesIngestAndDrains checks the drain semantics: pause cuts
// the graph at its stream edges (admitted executions finish; a chain
// caught mid-flight defers its downstream stage), subsequent ingest
// queues without executing, the graph's state is frozen while paused, and
// resume dispatches the deferred work plus the backlog with nothing lost.
func TestPauseQueuesIngestAndDrains(t *testing.T) {
	st := dfStore(t, Config{})
	if err := st.Deploy(pipelineDF()); err != nil {
		t.Fatal(err)
	}
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	for i := 0; i < 4; i++ {
		if err := st.Ingest("feed", types.Row{types.NewInt(int64(i)), types.NewInt(1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.PauseDataflow("pipeline"); err != nil {
		t.Fatal(err)
	}
	// Pause returned once the admitted executions finished; depending on
	// where the gate caught the chain, 0..4 rows reached the sink. From
	// here on the count must not move until resume.
	res, _ := st.Query("SELECT COUNT(*) FROM sink")
	frozen := res.Rows[0][0].Int()
	if frozen > 4 {
		t.Fatalf("after pause: %d rows, want at most 4", frozen)
	}
	// Ingest while paused queues; nothing executes.
	for i := 4; i < 8; i++ {
		if err := st.Ingest("feed", types.Row{types.NewInt(int64(i)), types.NewInt(1)}); err != nil {
			t.Fatal(err)
		}
	}
	st.Drain()
	res, _ = st.Query("SELECT COUNT(*) FROM sink")
	if got := res.Rows[0][0].Int(); got != frozen {
		t.Fatalf("paused graph kept executing: %d rows, want %d", got, frozen)
	}
	show, _ := st.Query("SHOW DATAFLOWS")
	if state := show.Rows[0][1].Str(); state != "paused" {
		t.Fatalf("state = %q, want paused", state)
	}
	if err := st.ResumeDataflow("pipeline"); err != nil {
		t.Fatal(err)
	}
	st.Drain()
	res, _ = st.Query("SELECT COUNT(*) FROM sink")
	if got := res.Rows[0][0].Int(); got != 8 {
		t.Fatalf("after resume: %d rows, want 8 (deferred + queued batches must dispatch)", got)
	}
}

// TestDataflowsSurviveRecovery checks the acceptance flow: a durable store
// whose graph is re-deployed by setup code is introspectable by name after
// a crash/recovery cycle, and replay ran through the graph's wiring.
func TestDataflowsSurviveRecovery(t *testing.T) {
	dir := t.TempDir()
	build := func() *Store {
		st := dfStore(t, Config{Dir: dir, Partitions: 2})
		if err := st.Deploy(pipelineDF()); err != nil {
			t.Fatal(err)
		}
		return st
	}
	st := build()
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := st.Ingest("feed", types.Row{types.NewInt(int64(i)), types.NewInt(1)}); err != nil {
			t.Fatal(err)
		}
	}
	st.FlushBatches()
	st.Drain()
	if err := st.Stop(); err != nil { // crash: state lives only in the log
		t.Fatal(err)
	}

	st2 := build()
	if err := st2.Start(); err != nil {
		t.Fatal(err)
	}
	defer st2.Stop()
	show, err := st2.Query("SHOW DATAFLOWS")
	if err != nil {
		t.Fatal(err)
	}
	if len(show.Rows) != 1 || show.Rows[0][0].Str() != "pipeline" ||
		show.Rows[0][1].Str() != "running" {
		t.Fatalf("SHOW DATAFLOWS after recovery: %v", show.Rows)
	}
	res, err := st2.Query("SELECT SUM(n) FROM sink")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != 10 {
		t.Fatalf("recovered sink sum = %d, want 10", got)
	}
	// The recovered graph still processes new input.
	if err := st2.Ingest("feed",
		types.Row{types.NewInt(100), types.NewInt(1)},
		types.Row{types.NewInt(101), types.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	st2.FlushBatches()
	st2.Drain()
	res, _ = st2.Query("SELECT SUM(n) FROM sink")
	if got := res.Rows[0][0].Int(); got != 12 {
		t.Fatalf("post-recovery ingest: sum = %d, want 12", got)
	}
}

// TestCompatShims checks the legacy single-call API still works and is
// visible as anonymous graphs: BindStream clamps batch < 1 (documented
// legacy behavior) where Deploy rejects it, and CreateTrigger deploys a
// trigger-only graph.
func TestCompatShims(t *testing.T) {
	st := dfStore(t, Config{})
	if err := st.BindStream("feed", "df_stage1", 0); err != nil { // clamped to 1
		t.Fatalf("legacy clamp lost: %v", err)
	}
	if err := st.BindStream("mid", "df_stage2", 1); err != nil {
		t.Fatal(err)
	}
	if err := st.BindStream("mid", "df_stage1", 1); err == nil {
		t.Fatal("double consumer through the shim not rejected")
	}
	if err := st.CreateTrigger("tg", "feed", "DELETE FROM sink"); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, df := range st.Dataflows() {
		if !df.Anon {
			t.Fatalf("shim-built graph %q not marked anonymous", df.Name)
		}
		names[df.Name] = true
	}
	for _, want := range []string{"bind_feed", "bind_mid", "trigger_feed_tg"} {
		if !names[want] {
			t.Fatalf("missing anonymous graph %q (have %v)", want, names)
		}
	}
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	// The clamped batch size of 1 dispatches immediately.
	if err := st.Ingest("feed", types.Row{types.NewInt(1), types.NewInt(5)}); err != nil {
		t.Fatal(err)
	}
	st.Drain()
	res, err := st.Query("SELECT SUM(n) FROM sink")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != 5 {
		t.Fatalf("shim pipeline sum = %d, want 5", got)
	}
}

// TestPausedBacklogBound checks the queue-or-reject semantics: a paused
// graph queues a bounded backlog and then rejects further ingest.
func TestPausedBacklogBound(t *testing.T) {
	st := dfStore(t, Config{})
	if err := st.Deploy(pipelineDF()); err != nil {
		t.Fatal(err)
	}
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	if err := st.PauseDataflow("pipeline"); err != nil {
		t.Fatal(err)
	}
	rows := make([]types.Row, 1<<16)
	for i := range rows {
		rows[i] = types.Row{types.NewInt(int64(i)), types.NewInt(1)}
	}
	if err := st.Ingest("feed", rows...); err != nil {
		t.Fatalf("backlog within bound rejected: %v", err)
	}
	err := st.Ingest("feed", types.Row{types.NewInt(0), types.NewInt(1)})
	if err == nil || !strings.Contains(err.Error(), "backlog") {
		t.Fatalf("over-bound ingest not rejected: %v", err)
	}
	if err := st.ResumeDataflow("pipeline"); err != nil {
		t.Fatal(err)
	}
	st.FlushBatches()
	st.Drain()
	res, qerr := st.Query("SELECT COUNT(*) FROM sink")
	if qerr != nil {
		t.Fatal(qerr)
	}
	if got := res.Rows[0][0].Int(); got != 1<<16 {
		t.Fatalf("resumed backlog processed %d rows, want %d", got, 1<<16)
	}
}

// TestPauseGatesOLTPEntryEmissions checks that a paused graph's interior
// edges are gated too: an OLTP entry node's emission while paused defers
// the downstream execution until resume (nothing runs, nothing is lost).
func TestPauseGatesOLTPEntryEmissions(t *testing.T) {
	st := Open(Config{})
	if err := st.ExecScript(`
		CREATE TABLE sunk (k INT PRIMARY KEY, n BIGINT DEFAULT 0);
		CREATE STREAM events (k INT);
	`); err != nil {
		t.Fatal(err)
	}
	if err := st.RegisterProcedure(&pe.Procedure{
		Name: "entry",
		Handler: func(ctx *pe.ProcCtx) error {
			return ctx.Emit("events", types.Row{ctx.Params[0]})
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.RegisterProcedure(&pe.Procedure{
		Name:     "absorb",
		WriteSet: []string{"sunk"},
		Handler: func(ctx *pe.ProcCtx) error {
			for _, r := range ctx.Batch {
				if _, err := ctx.Exec("INSERT INTO sunk (k) VALUES (?)", r[0]); err != nil {
					return err
				}
			}
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.Deploy(&Dataflow{Name: "g", Nodes: []DataflowNode{
		{Proc: "entry", Emits: []string{"events"}},
		{Proc: "absorb", Input: "events", Batch: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	if err := st.PauseDataflow("g"); err != nil {
		t.Fatal(err)
	}
	// OLTP calls keep working while the graph is paused...
	for i := 0; i < 3; i++ {
		if _, err := st.Call("entry", types.NewInt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	st.Drain()
	// ...but their emissions must not execute the paused graph's stages.
	res, err := st.Query("SELECT COUNT(*) FROM sunk")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != 0 {
		t.Fatalf("paused graph executed %d triggered TEs from OLTP emissions", got)
	}
	if err := st.ResumeDataflow("g"); err != nil {
		t.Fatal(err)
	}
	st.Drain()
	res, err = st.Query("SELECT COUNT(*) FROM sunk")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != 3 {
		t.Fatalf("deferred emissions after resume: %d rows, want 3", got)
	}
}

// TestPauseScopedToGraph checks that pausing one graph does not block the
// pause call behind another graph's traffic, and the untouched graph
// keeps processing while the first is paused.
func TestPauseScopedToGraph(t *testing.T) {
	st := dfStore(t, Config{})
	if err := st.Deploy(pipelineDF()); err != nil {
		t.Fatal(err)
	}
	// A second, independent graph over its own stream.
	if err := st.ExecScript(`CREATE STREAM feed2 (k INT, amt BIGINT);`); err != nil {
		t.Fatal(err)
	}
	if err := st.RegisterProcedure(&pe.Procedure{
		Name:     "df_other",
		WriteSet: []string{"sink"},
		Handler: func(ctx *pe.ProcCtx) error {
			for _, r := range ctx.Batch {
				res, err := ctx.Exec("UPDATE sink SET n = n + ? WHERE k = ?", r[1], r[0])
				if err != nil {
					return err
				}
				if res.RowsAffected == 0 {
					if _, err := ctx.Exec("INSERT INTO sink VALUES (?, ?)", r[0], r[1]); err != nil {
						return err
					}
				}
			}
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.Deploy(&Dataflow{Name: "other", Nodes: []DataflowNode{
		{Proc: "df_other", Input: "feed2", Batch: 1}}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	if err := st.PauseDataflow("pipeline"); err != nil {
		t.Fatal(err)
	}
	// The untouched graph keeps running while "pipeline" is paused.
	if err := st.Ingest("feed2", types.Row{types.NewInt(1000), types.NewInt(7)}); err != nil {
		t.Fatal(err)
	}
	st.Drain()
	res, err := st.Query("SELECT n FROM sink WHERE k = 1000")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 7 {
		t.Fatalf("other graph blocked by pause: %v", res.Rows)
	}
	if err := st.ResumeDataflow("pipeline"); err != nil {
		t.Fatal(err)
	}
}

// TestUndeployDataflow removes graphs live: in-flight work drains, the
// wiring and catalog entries disappear on every partition, a producer
// cannot be removed out from under a downstream consumer graph, and the
// freed streams are immediately redeployable.
func TestUndeployDataflow(t *testing.T) {
	st := dfStore(t, Config{Partitions: 2})
	// Two chained graphs: producer feeds mid, consumer drains mid to sink.
	producer := &Dataflow{Name: "producer", Nodes: []DataflowNode{
		{Proc: "df_stage1", Input: "feed", Batch: 1, Emits: []string{"mid"}}}}
	consumer := &Dataflow{Name: "consumer", Nodes: []DataflowNode{
		{Proc: "df_stage2", Input: "mid", Batch: 1}}}
	if err := st.Deploy(producer); err != nil {
		t.Fatal(err)
	}
	if err := st.Deploy(consumer); err != nil {
		t.Fatal(err)
	}
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	defer st.Stop()

	if err := st.UndeployDataflow("nosuch"); err == nil ||
		!strings.Contains(err.Error(), "unknown dataflow") {
		t.Fatalf("unknown undeploy err = %v", err)
	}
	// The producer cannot go while the consumer reads its interior stream.
	if err := st.UndeployDataflow("producer"); err == nil ||
		!strings.Contains(err.Error(), `dataflow "consumer" consumes its stream "mid"`) {
		t.Fatalf("producer undeploy err = %v", err)
	}

	for k := 0; k < 8; k++ {
		if err := st.Ingest("feed", types.Row{types.NewInt(int64(k)), types.NewInt(5)}); err != nil {
			t.Fatal(err)
		}
	}
	st.Drain()
	// Consumer first, then producer: both drain and unwind cleanly.
	if err := st.UndeployDataflow("consumer"); err != nil {
		t.Fatal(err)
	}
	if err := st.UndeployDataflow("producer"); err != nil {
		t.Fatal(err)
	}
	if got := len(st.Dataflows()); got != 0 {
		t.Fatalf("%d dataflows still registered", got)
	}
	// Everything admitted before the undeploy landed in sink.
	res, err := st.Query("SELECT COUNT(*), SUM(n) FROM sink")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 8 || res.Rows[0][1].Int() != 40 {
		t.Fatalf("sink after undeploy: %v", res.Rows)
	}
	// The streams are unbound again on every partition...
	for i := 0; i < st.NumPartitions(); i++ {
		for _, stream := range []string{"feed", "mid"} {
			if err := st.PEAt(i).Ingest(stream, types.Row{types.NewInt(1), types.NewInt(1)}); err == nil ||
				!strings.Contains(err.Error(), "no bound procedure") {
				t.Fatalf("partition %d: stream %s still wired after undeploy: %v", i, stream, err)
			}
		}
	}
	// ...so the full pipeline redeploys over the same names and runs.
	if err := st.Deploy(pipelineDF()); err != nil {
		t.Fatal(err)
	}
	if err := st.Ingest("feed", types.Row{types.NewInt(100), types.NewInt(1)},
		types.Row{types.NewInt(101), types.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	st.FlushBatches()
	st.Drain()
	res, err = st.Query("SELECT COUNT(*) FROM sink")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 10 {
		t.Fatalf("sink after redeploy: %v", res.Rows)
	}
}

// TestUndeployPausedDataflow undeploys a graph that is already paused with
// backlog queued behind the gate: the backlog is discarded with the graph
// and the store stays consistent.
func TestUndeployPausedDataflow(t *testing.T) {
	st := dfStore(t, Config{Partitions: 2})
	if err := st.Deploy(pipelineDF()); err != nil {
		t.Fatal(err)
	}
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	if err := st.Ingest("feed", types.Row{types.NewInt(1), types.NewInt(1)},
		types.Row{types.NewInt(2), types.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	st.FlushBatches()
	st.Drain()
	if err := st.PauseDataflow("pipeline"); err != nil {
		t.Fatal(err)
	}
	// Queue backlog behind the gate; it is dropped with the graph.
	if err := st.Ingest("feed", types.Row{types.NewInt(3), types.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	if err := st.UndeployDataflow("pipeline"); err != nil {
		t.Fatal(err)
	}
	res, err := st.Query("SELECT COUNT(*) FROM sink")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("sink after paused undeploy: %v", res.Rows)
	}
	// The freed stream accepts a new deployment and ingest flows again.
	if err := st.Deploy(pipelineDF()); err != nil {
		t.Fatal(err)
	}
	if err := st.Ingest("feed", types.Row{types.NewInt(4), types.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	st.FlushBatches()
	st.Drain()
	res, err = st.Query("SELECT COUNT(*) FROM sink")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 3 {
		t.Fatalf("sink after redeploy: %v", res.Rows)
	}
}

// TestDeployDataflowStatement deploys the two-stage pipeline through the
// textual DDL form — the path a wire client like sstorecli uses — and
// checks the graph runs end to end, including an EE trigger declared
// inline, and that parser and validator errors both surface through the
// statement.
func TestDeployDataflowStatement(t *testing.T) {
	st := dfStore(t, Config{Partitions: 2})
	if err := st.ExecScript(`CREATE TABLE audit (k INT PRIMARY KEY, amt BIGINT) PARTITION BY k;`); err != nil {
		t.Fatal(err)
	}
	res, err := st.Exec(`DEPLOY DATAFLOW pipeline (
		NODE df_stage1 INPUT feed BATCH 2 EMITS (mid),
		NODE df_stage2 INPUT mid BATCH 1,
		TRIGGER audit_feed ON feed AS ('INSERT INTO audit SELECT k, amt FROM new')
	);`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "pipeline" {
		t.Fatalf("deploy result: %+v", res)
	}
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	for i := 0; i < 10; i++ {
		if err := st.Ingest("feed", types.Row{types.NewInt(int64(i)), types.NewInt(1)}); err != nil {
			t.Fatal(err)
		}
	}
	st.FlushBatches()
	st.Drain()
	sum, err := st.Query("SELECT SUM(n) FROM sink")
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.Rows[0][0].Int(); got != 10 {
		t.Fatalf("sink sum = %d, want 10", got)
	}
	aud, err := st.Query("SELECT COUNT(*) FROM audit")
	if err != nil {
		t.Fatal(err)
	}
	if got := aud.Rows[0][0].Int(); got != 10 {
		t.Fatalf("audit rows = %d, want 10 (EE trigger from the text form)", got)
	}
	show, err := st.Query("SHOW DATAFLOWS")
	if err != nil {
		t.Fatal(err)
	}
	if len(show.Rows) != 1 || show.Rows[0][0].Str() != "pipeline" {
		t.Fatalf("SHOW DATAFLOWS after text deploy: %v", show.Rows)
	}

	// The Query path accepts the statement too, and runs the same
	// whole-graph validation as the Go API.
	if _, err := st.Query("DEPLOY DATAFLOW pipeline (NODE df_stage2 INPUT mid BATCH 1)"); err == nil ||
		!strings.Contains(err.Error(), "already deployed") {
		t.Fatalf("duplicate name through text form: %v", err)
	}
	if _, err := st.Query("DEPLOY DATAFLOW g2 (NODE nosuch INPUT feed BATCH 1)"); err == nil ||
		!strings.Contains(err.Error(), "unknown procedure") {
		t.Fatalf("validator bypassed by text form: %v", err)
	}
	if _, err := st.Query("DEPLOY DATAFLOW broken (NODE df_stage1 INPUT feed)"); err == nil ||
		!strings.Contains(err.Error(), "BATCH") {
		t.Fatalf("parse error not surfaced: %v", err)
	}
	if got := len(st.Dataflows()); got != 1 {
		t.Fatalf("failed text deploys left %d dataflows", got)
	}
}
