package voter

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ee"
	"repro/internal/pe"
	"repro/internal/types"
	"repro/internal/workload"
)

// resultRow wraps one integer as a procedure result.
func resultRow(v int64) *ee.Result {
	return &ee.Result{Columns: []string{"v"}, Rows: []types.Row{{types.NewInt(v)}}}
}

// SetupHStore installs the naïve H-Store variant: the same tables and the
// same application logic, but decomposed into independent OLTP procedures
// with no streams, windows, or triggers. The workflow lives in the client
// (HClient below), which is exactly what §3.1 warns about: client-driven
// sequencing provides none of the ordering guarantees, and the client pays
// extra round trips for stage invocation and window maintenance.
func SetupHStore(st *core.Store, contestants int) error {
	if err := st.ExecScript(tableDDL); err != nil {
		return err
	}
	if err := seedContestants(st, contestants); err != nil {
		return err
	}
	procs := []*pe.Procedure{
		{
			// Stage 1 as an OLTP call: validate and record one vote.
			// Returns accepted (1/0).
			Name:     "hv_validate",
			ReadSet:  []string{"contestants", "winner"},
			WriteSet: []string{"votes"},
			Handler: func(ctx *pe.ProcCtx) error {
				phone, cand, ts := ctx.Params[0], ctx.Params[1], ctx.Params[2]
				accepted := int64(0)
				w, err := ctx.QueryRow("SELECT contestant FROM winner WHERE id = 0")
				if err != nil {
					return err
				}
				if w == nil {
					c, err := ctx.QueryRow("SELECT id FROM contestants WHERE id = ?", cand)
					if err != nil {
						return err
					}
					p, err := ctx.QueryRow("SELECT phone FROM votes WHERE phone = ?", phone)
					if err != nil {
						return err
					}
					if c != nil && p == nil {
						if _, err := ctx.Exec("INSERT INTO votes VALUES (?, ?, ?)", phone, cand, ts); err != nil {
							return err
						}
						accepted = 1
					}
				}
				ctx.SetResult(resultRow(accepted))
				return nil
			},
		},
		{
			// Stage 2 as an OLTP call: bump the candidate count and the
			// running total. Returns the new total.
			Name:     "hv_count",
			ReadSet:  []string{"vote_totals"},
			WriteSet: []string{"vote_counts", "vote_totals"},
			Handler: func(ctx *pe.ProcCtx) error {
				cand := ctx.Params[0]
				if _, err := ctx.Exec("UPDATE vote_counts SET n = n + 1 WHERE contestant = ?", cand); err != nil {
					return err
				}
				if _, err := ctx.Exec("UPDATE vote_totals SET n = n + 1 WHERE id = 0"); err != nil {
					return err
				}
				row, err := ctx.QueryRow("SELECT n FROM vote_totals WHERE id = 0")
				if err != nil {
					return err
				}
				ctx.SetResult(resultRow(row[0].Int()))
				return nil
			},
		},
		{
			// Client-side window maintenance: +1 for the entering vote,
			// -1 for the one expiring from the client's deque. Two extra
			// PE→EE statements and one extra client→PE trip per vote that
			// S-Store's native window does not pay.
			Name:     "hv_trend",
			WriteSet: []string{"trending"},
			Handler: func(ctx *pe.ProcCtx) error {
				add, rem := ctx.Params[0], ctx.Params[1]
				if add.Int() > 0 {
					res, err := ctx.Exec("UPDATE trending SET n = n + 1 WHERE contestant = ?", add)
					if err != nil {
						return err
					}
					if res.RowsAffected == 0 {
						if _, err := ctx.Exec("INSERT INTO trending VALUES (?, 1)", add); err != nil {
							return err
						}
					}
				}
				if rem.Int() > 0 {
					if _, err := ctx.Exec("UPDATE trending SET n = n - 1 WHERE contestant = ?", rem); err != nil {
						return err
					}
					if _, err := ctx.Exec("DELETE FROM trending WHERE n <= 0"); err != nil {
						return err
					}
				}
				return nil
			},
		},
		{
			// Stage 3 as an OLTP call, invoked by the client when it
			// observes the total crossing a multiple of 100.
			Name:     "hv_remove_lowest",
			ReadSet:  []string{"vote_counts", "contestants", "eliminations"},
			WriteSet: []string{"contestants", "votes", "vote_counts", "trending", "winner", "eliminations"},
			Handler: func(ctx *pe.ProcCtx) error {
				return EliminateLowest(ctx, ctx.Params[0].Int())
			},
		},
		{
			// The poll the push-based design eliminates.
			Name:    "hv_total",
			ReadSet: []string{"vote_totals"},
			Handler: func(ctx *pe.ProcCtx) error {
				row, err := ctx.QueryRow("SELECT n FROM vote_totals WHERE id = 0")
				if err != nil {
					return err
				}
				ctx.SetResult(resultRow(row[0].Int()))
				return nil
			},
		},
	}
	for _, p := range procs {
		if err := st.RegisterProcedure(p); err != nil {
			return err
		}
	}
	return nil
}

// HClient drives the H-Store variant the way a real application would:
// submit votes asynchronously with up to Pipeline in flight, invoke the
// counting stage after each validation response, maintain the trending
// window client-side, and invoke elimination when a counted total crosses
// a multiple of 100. The driver is single-threaded and therefore
// deterministic: every anomaly it produces is reproducible by seed.
//
// Pipeline = 1 serializes the whole workflow through the client (correct
// but slow — every stage pays a full round trip); Pipeline > 1 recovers
// throughput but admits exactly the §3.1 anomalies, because later votes
// are validated and counted before an earlier elimination runs.
type HClient struct {
	St *core.Store
	// Pipeline is the number of votes submitted per round (in-flight
	// window).
	Pipeline int
	// MaintainTrending enables the client-side trending window (extra
	// round trips; disable to make throughput comparisons conservative).
	MaintainTrending bool
	// PollEvery issues an hv_total poll every n rounds (0 = no polling) —
	// models the dashboard that must poll for new data.
	PollEvery int
	// Transport overrides how invocations reach the engine; the RTT
	// experiments inject a latency-charging wrapper here. Nil = direct.
	Transport func(proc string, params ...types.Value) <-chan pe.CallResult

	trendDeque []int64
	rounds     int
}

func (c *HClient) callAsync(proc string, params ...types.Value) <-chan pe.CallResult {
	if c.Transport != nil {
		return c.Transport(proc, params...)
	}
	return c.St.CallAsync(proc, params...)
}

func (c *HClient) call(proc string, params ...types.Value) (*pe.Result, error) {
	cr := <-c.callAsync(proc, params...)
	return cr.Result, cr.Err
}

// Run feeds the votes through the client-driven workflow.
func (c *HClient) Run(votes []workload.Vote) error {
	if c.Pipeline < 1 {
		c.Pipeline = 1
	}
	for i := 0; i < len(votes); i += c.Pipeline {
		end := i + c.Pipeline
		if end > len(votes) {
			end = len(votes)
		}
		round := votes[i:end]
		// Phase 1: submit every validation in the round asynchronously.
		vchans := make([]<-chan pe.CallResult, len(round))
		for j, v := range round {
			vchans[j] = c.callAsync("hv_validate",
				types.NewInt(v.Phone), types.NewInt(v.Contestant), types.NewInt(v.TS))
		}
		// Phase 2: harvest, then count the accepted votes (still async —
		// the client does not wait for one count before sending the next).
		var accepted []workload.Vote
		for j := range vchans {
			cr := <-vchans[j]
			if cr.Err != nil {
				return fmt.Errorf("hv_validate: %w", cr.Err)
			}
			if len(cr.Result.Rows) > 0 && cr.Result.Rows[0][0].Int() == 1 {
				accepted = append(accepted, round[j])
			}
		}
		cchans := make([]<-chan pe.CallResult, len(accepted))
		for j, v := range accepted {
			cchans[j] = c.callAsync("hv_count", types.NewInt(v.Contestant))
		}
		if c.MaintainTrending {
			for _, v := range accepted {
				c.trendDeque = append(c.trendDeque, v.Contestant)
				rem := int64(0)
				if len(c.trendDeque) > TrendWindow {
					rem = c.trendDeque[0]
					c.trendDeque = c.trendDeque[1:]
				}
				if _, err := c.call("hv_trend", types.NewInt(v.Contestant), types.NewInt(rem)); err != nil {
					return fmt.Errorf("hv_trend: %w", err)
				}
			}
		}
		// Phase 3: inspect the totals; when one crossed a multiple of 100,
		// fire the elimination — too late, if the pipeline already counted
		// votes past the boundary.
		for j := range cchans {
			cr := <-cchans[j]
			if cr.Err != nil {
				return fmt.Errorf("hv_count: %w", cr.Err)
			}
			total := cr.Result.Rows[0][0].Int()
			if total%EliminateEvery == 0 {
				if _, err := c.call("hv_remove_lowest", types.NewInt(total)); err != nil {
					return fmt.Errorf("hv_remove_lowest: %w", err)
				}
			}
		}
		c.rounds++
		if c.PollEvery > 0 && c.rounds%c.PollEvery == 0 {
			if _, err := c.call("hv_total"); err != nil {
				return fmt.Errorf("hv_total: %w", err)
			}
		}
	}
	c.St.Drain()
	return nil
}
