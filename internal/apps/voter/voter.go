// Package voter implements the paper's §3.1 application, "Voter with
// Leaderboard": a televised talent contest where viewers vote by text
// message, leaderboards update with every vote, and every 100th vote
// eliminates the weakest candidate — returning that candidate's votes to
// their voters for re-casting, until one winner remains.
//
// The workload is implemented twice over the same engine:
//
//   - S-Store mode (this file): a three-procedure workflow SP1→SP2→SP3
//     wired with PE triggers, a native ROWS-100 window feeding the
//     trending leaderboard through an EE trigger, and the engine's
//     ordering guarantees doing the correctness work.
//   - H-Store mode (hstore.go): the same logic as independent OLTP
//     procedures driven by a polling client — the paper's naïve baseline,
//     which both loses throughput (extra round trips) and produces
//     incorrect results under pipelining.
//
// oracle.go holds the sequential reference semantics both are audited
// against (audit.go).
package voter

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ee"
	"repro/internal/pe"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/workload"
)

// EliminateEvery is the vote count between eliminations (the paper's 100).
const EliminateEvery = 100

// TrendWindow is the trending-leaderboard window size (last 100 votes).
const TrendWindow = 100

// DDL shared by both modes: the persistent tables.
const tableDDL = `
	CREATE TABLE contestants (id INT PRIMARY KEY, name VARCHAR NOT NULL);
	CREATE TABLE votes (phone BIGINT PRIMARY KEY, contestant INT NOT NULL, ts BIGINT);
	CREATE INDEX votes_by_contestant ON votes (contestant);
	CREATE TABLE vote_counts (contestant INT PRIMARY KEY, n BIGINT DEFAULT 0);
	CREATE TABLE vote_totals (id INT PRIMARY KEY, n BIGINT DEFAULT 0);
	CREATE TABLE trending (contestant INT PRIMARY KEY, n BIGINT);
	CREATE TABLE winner (id INT PRIMARY KEY, contestant INT);
	CREATE TABLE eliminations (ord INT PRIMARY KEY, contestant INT, at_total BIGINT);
`

// streamDDL exists only in S-Store mode.
const streamDDL = `
	CREATE STREAM votes_in (phone BIGINT, contestant INT, ts BIGINT);
	CREATE STREAM validated (phone BIGINT, contestant INT, ts BIGINT);
	CREATE STREAM removals (at_total BIGINT);
	CREATE WINDOW w_trend ON validated ROWS 100 SLIDE 1;
`

// Setup installs the S-Store variant on a store: schema, the SP1→SP2→SP3
// workflow (Fig. 3) declared as one "voter" dataflow graph — nodes, stream
// edges, the trending window's EE trigger — deployed atomically.
func Setup(st *core.Store, contestants int) error {
	if err := st.ExecScript(tableDDL + streamDDL); err != nil {
		return err
	}
	if err := seedContestants(st, contestants); err != nil {
		return err
	}
	if err := st.RegisterProcedure(sp1()); err != nil {
		return err
	}
	if err := st.RegisterProcedure(sp2()); err != nil {
		return err
	}
	if err := st.RegisterProcedure(sp3()); err != nil {
		return err
	}
	// The trending leaderboard trigger deploys with the graph: maintained
	// incrementally inside the inserting transaction from the window's
	// deltas — votes entering the last-100 window increment, votes expiring
	// from it decrement. No polling, no client round trips, no
	// recomputation (native windowing + EE triggers, §2). Rows are
	// pre-seeded per contestant and SP3 removes a candidate's row at
	// elimination.
	return st.Deploy(&core.Dataflow{
		Name: "voter",
		Nodes: []core.DataflowNode{
			{Proc: "sp1_validate", Input: "votes_in", Batch: 1, Emits: []string{"validated"}},
			{Proc: "sp2_leaderboard", Input: "validated", Batch: 1, Emits: []string{"removals"}},
			{Proc: "sp3_eliminate", Input: "removals", Batch: 1},
		},
		Triggers: []core.DataflowTrigger{{
			Name:     "trend_maintain",
			Relation: "w_trend",
			Bodies: []string{
				"UPDATE trending SET n = n + 1 WHERE contestant IN (SELECT contestant FROM inserted)",
				"UPDATE trending SET n = n - 1 WHERE contestant IN (SELECT contestant FROM expired)",
			},
		}},
	})
}

var contestantNames = []string{
	"Avery", "Blake", "Casey", "Drew", "Emery", "Finley", "Gray", "Harper",
	"Indigo", "Jules", "Kai", "Lennon", "Marlow", "Noa", "Oakley", "Parker",
	"Quinn", "Reese", "Sage", "Tatum", "Umber", "Vesper", "Wren", "Xen", "Yael",
}

// contestantName returns the display name for contestant i.
func contestantName(i int) string {
	if i >= 1 && i <= len(contestantNames) {
		return contestantNames[i-1]
	}
	return fmt.Sprintf("cand-%d", i)
}

// seedEngine seeds one engine replica's per-contestant rows (contestants,
// zeroed vote_counts and trending). withTotals adds the single
// vote_totals row the unpartitioned workflow keeps; the partitioned
// variant has no global total.
func seedEngine(exec *ee.Engine, n int, withTotals bool) error {
	ctx := &ee.ExecCtx{Undo: storage.NewUndoLog()}
	for i := 1; i <= n; i++ {
		id := types.NewInt(int64(i))
		if _, err := exec.ExecSQL(ctx, "INSERT INTO contestants VALUES (?, ?)",
			id, types.NewString(contestantName(i))); err != nil {
			return err
		}
		if _, err := exec.ExecSQL(ctx, "INSERT INTO vote_counts (contestant, n) VALUES (?, 0)", id); err != nil {
			return err
		}
		if _, err := exec.ExecSQL(ctx, "INSERT INTO trending (contestant, n) VALUES (?, 0)", id); err != nil {
			return err
		}
	}
	if withTotals {
		_, err := exec.ExecSQL(ctx, "INSERT INTO vote_totals VALUES (0, 0)")
		return err
	}
	return nil
}

func seedContestants(st *core.Store, n int) error { return seedEngine(st.EE(), n, true) }

// sp1 validates each incoming vote — the contestant must exist and the
// phone must not have a live vote — records it, and forwards it downstream.
func sp1() *pe.Procedure {
	return &pe.Procedure{
		Name:     "sp1_validate",
		ReadSet:  []string{"contestants", "winner"},
		WriteSet: []string{"votes"},
		Handler: func(ctx *pe.ProcCtx) error {
			for _, v := range ctx.Batch {
				phone, cand := v[0], v[1]
				// Voting closes once a winner is declared.
				w, err := ctx.QueryRow("SELECT contestant FROM winner WHERE id = 0")
				if err != nil {
					return err
				}
				if w != nil {
					continue
				}
				c, err := ctx.QueryRow("SELECT id FROM contestants WHERE id = ?", cand)
				if err != nil {
					return err
				}
				if c == nil {
					continue // invalid candidate
				}
				p, err := ctx.QueryRow("SELECT phone FROM votes WHERE phone = ?", phone)
				if err != nil {
					return err
				}
				if p != nil {
					continue // this phone already voted
				}
				if _, err := ctx.Exec("INSERT INTO votes VALUES (?, ?, ?)", phone, cand, v[2]); err != nil {
					return err
				}
				if err := ctx.Emit("validated", v); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// sp2 maintains the vote counts and the running total; every
// EliminateEvery'th vote it emits a removal event for SP3. The trending
// leaderboard updates as a side effect of the validated stream feeding
// w_trend (native windowing + EE trigger: zero extra round trips).
func sp2() *pe.Procedure {
	return &pe.Procedure{
		Name:     "sp2_leaderboard",
		ReadSet:  []string{"vote_totals", "contestants"},
		WriteSet: []string{"vote_counts", "vote_totals", "trending"},
		Handler: func(ctx *pe.ProcCtx) error {
			for _, v := range ctx.Batch {
				if _, err := ctx.Exec("UPDATE vote_counts SET n = n + 1 WHERE contestant = ?",
					v[1]); err != nil {
					return err
				}
				if _, err := ctx.Exec("UPDATE vote_totals SET n = n + 1 WHERE id = 0"); err != nil {
					return err
				}
				row, err := ctx.QueryRow("SELECT n FROM vote_totals WHERE id = 0")
				if err != nil {
					return err
				}
				total := row[0].Int()
				if total%EliminateEvery == 0 {
					remaining, err := ctx.QueryRow("SELECT COUNT(*) FROM contestants")
					if err != nil {
						return err
					}
					if remaining[0].Int() > 1 {
						if err := ctx.Emit("removals", types.Row{types.NewInt(total)}); err != nil {
							return err
						}
					}
				}
			}
			return nil
		},
	}
}

// sp3 eliminates the lowest-vote candidate: it deletes the candidate, all
// votes cast for them (returning those votes to their phones), the count
// row, and the trending entry — and declares the winner when one remains.
func sp3() *pe.Procedure {
	return &pe.Procedure{
		Name:     "sp3_eliminate",
		ReadSet:  []string{"vote_counts", "contestants", "eliminations"},
		WriteSet: []string{"contestants", "votes", "vote_counts", "trending", "winner", "eliminations"},
		Handler: func(ctx *pe.ProcCtx) error {
			for _, ev := range ctx.Batch {
				if err := EliminateLowest(ctx, ev[0].Int()); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// EliminateLowest holds the shared elimination logic (also used verbatim by
// the H-Store variant so the comparison isolates the architecture, not the
// application code).
func EliminateLowest(ctx *pe.ProcCtx, atTotal int64) error {
	remaining, err := ctx.QueryRow("SELECT COUNT(*) FROM contestants")
	if err != nil {
		return err
	}
	if remaining[0].Int() <= 1 {
		return nil
	}
	low, err := ctx.QueryRow(
		"SELECT contestant FROM vote_counts ORDER BY n ASC, contestant ASC LIMIT 1")
	if err != nil {
		return err
	}
	if low == nil {
		return nil
	}
	loser := low[0]
	for _, stmt := range []string{
		"DELETE FROM votes WHERE contestant = ?",
		"DELETE FROM vote_counts WHERE contestant = ?",
		"DELETE FROM trending WHERE contestant = ?",
		"DELETE FROM contestants WHERE id = ?",
	} {
		if _, err := ctx.Exec(stmt, loser); err != nil {
			return err
		}
	}
	ord, err := ctx.QueryRow("SELECT COUNT(*) FROM eliminations")
	if err != nil {
		return err
	}
	if _, err := ctx.Exec("INSERT INTO eliminations VALUES (?, ?, ?)",
		types.NewInt(ord[0].Int()+1), loser, types.NewInt(atTotal)); err != nil {
		return err
	}
	if remaining[0].Int() == 2 { // one left now: the winner
		last, err := ctx.QueryRow("SELECT id FROM contestants")
		if err != nil {
			return err
		}
		if _, err := ctx.Exec("INSERT INTO winner VALUES (0, ?)", last[0]); err != nil {
			return err
		}
	}
	return nil
}

// RunSStore feeds the vote stream through the S-Store workflow. One
// Ingest call per vote models one text message arriving at the engine.
func RunSStore(st *core.Store, votes []workload.Vote) error {
	return RunSStoreChunked(st, votes, 1)
}

// RunSStoreChunked pushes the feed in chunks of `chunk` votes per client
// message. Transaction granularity is unchanged — the border binding still
// makes one SP1 execution per vote — only the client↔PE message count
// drops, which is exactly the batching freedom the push-based interface
// gives a streaming client (the polling baseline cannot batch its stage
// invocations, because each depends on the previous response).
func RunSStoreChunked(st *core.Store, votes []workload.Vote, chunk int) error {
	if chunk < 1 {
		chunk = 1
	}
	rows := make([]types.Row, 0, chunk)
	for i := 0; i < len(votes); i += chunk {
		end := i + chunk
		if end > len(votes) {
			end = len(votes)
		}
		rows = rows[:0]
		for _, v := range votes[i:end] {
			rows = append(rows,
				types.Row{types.NewInt(v.Phone), types.NewInt(v.Contestant), types.NewInt(v.TS)})
		}
		if err := st.Ingest("votes_in", rows...); err != nil {
			return err
		}
	}
	st.FlushBatches()
	st.Drain()
	return nil
}

// Leaderboards reads the three §3.1 leaderboards (Fig. 2): top three,
// bottom three, and top three trending over the last 100 votes.
func Leaderboards(st *core.Store) (top, bottom, trend []string, err error) {
	read := func(q string) ([]string, error) {
		res, err := st.Query(q)
		if err != nil {
			return nil, err
		}
		var out []string
		for _, r := range res.Rows {
			out = append(out, fmt.Sprintf("%s (%d)", r[0].Str(), r[1].Int()))
		}
		return out, nil
	}
	if top, err = read(`SELECT c.name, vc.n FROM vote_counts vc
		JOIN contestants c ON c.id = vc.contestant
		ORDER BY vc.n DESC, c.id ASC LIMIT 3`); err != nil {
		return
	}
	if bottom, err = read(`SELECT c.name, vc.n FROM vote_counts vc
		JOIN contestants c ON c.id = vc.contestant
		ORDER BY vc.n ASC, c.id ASC LIMIT 3`); err != nil {
		return
	}
	trend, err = read(`SELECT c.name, t.n FROM trending t
		JOIN contestants c ON c.id = t.contestant
		WHERE t.n > 0
		ORDER BY t.n DESC, c.id ASC LIMIT 3`)
	return
}
