package voter

import (
	"sort"

	"repro/internal/workload"
)

// Oracle is the sequential reference implementation of the §3.1 semantics:
// process votes strictly in arrival order, validate each against the state
// produced by all earlier votes, and eliminate the lowest-vote candidate
// the instant the 100th (200th, ...) vote commits — before any later vote
// is examined. A correct engine must match the oracle exactly; every
// H-Store anomaly in the paper is a divergence from it.
type Oracle struct {
	// Alive maps live candidate ids to true.
	Alive map[int64]bool
	// VoteOf maps a phone to its live vote's candidate.
	VoteOf map[int64]int64
	// Counts holds per-candidate live vote counts.
	Counts map[int64]int64
	// Total counts every accepted vote (never decremented).
	Total int64
	// Eliminations lists eliminated candidates in order.
	Eliminations []int64
	// EliminationTotals records the Total at each elimination.
	EliminationTotals []int64
	// Winner is the last candidate standing (0 while undecided).
	Winner int64
	// Accepted / Rejected count vote dispositions.
	Accepted, Rejected int
}

// RunOracle executes the reference semantics over the vote feed.
func RunOracle(votes []workload.Vote, contestants int, eliminateEvery int) *Oracle {
	o := &Oracle{
		Alive:  make(map[int64]bool, contestants),
		VoteOf: make(map[int64]int64),
		Counts: make(map[int64]int64, contestants),
	}
	for i := 1; i <= contestants; i++ {
		o.Alive[int64(i)] = true
		o.Counts[int64(i)] = 0
	}
	for _, v := range votes {
		if o.Winner != 0 {
			o.Rejected++
			continue // voting closed
		}
		if !o.Alive[v.Contestant] {
			o.Rejected++
			continue
		}
		if _, voted := o.VoteOf[v.Phone]; voted {
			o.Rejected++
			continue
		}
		o.VoteOf[v.Phone] = v.Contestant
		o.Counts[v.Contestant]++
		o.Total++
		o.Accepted++
		if o.Total%int64(eliminateEvery) == 0 && len(o.Alive) > 1 {
			o.eliminateLowest()
		}
	}
	return o
}

func (o *Oracle) eliminateLowest() {
	ids := make([]int64, 0, len(o.Alive))
	for id := range o.Alive {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		ci, cj := o.Counts[ids[i]], o.Counts[ids[j]]
		if ci != cj {
			return ci < cj
		}
		return ids[i] < ids[j]
	})
	loser := ids[0]
	delete(o.Alive, loser)
	delete(o.Counts, loser)
	for phone, cand := range o.VoteOf {
		if cand == loser {
			delete(o.VoteOf, phone) // the vote returns to its caster
		}
	}
	o.Eliminations = append(o.Eliminations, loser)
	o.EliminationTotals = append(o.EliminationTotals, o.Total)
	if len(o.Alive) == 1 {
		for id := range o.Alive {
			o.Winner = id
		}
	}
}

// AliveSorted returns the live candidate ids in ascending order.
func (o *Oracle) AliveSorted() []int64 {
	out := make([]int64, 0, len(o.Alive))
	for id := range o.Alive {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
