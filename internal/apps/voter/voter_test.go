package voter

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func newSStore(t testing.TB, contestants int) *core.Store {
	t.Helper()
	st := core.Open(core.Config{})
	if err := Setup(st, contestants); err != nil {
		t.Fatal(err)
	}
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	return st
}

func newHStore(t testing.TB, contestants int) *core.Store {
	t.Helper()
	st := core.Open(core.Config{HStoreMode: true})
	if err := SetupHStore(st, contestants); err != nil {
		t.Fatal(err)
	}
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestOracleBasics(t *testing.T) {
	votes := []workload.Vote{
		{Phone: 1, Contestant: 1}, {Phone: 2, Contestant: 1},
		{Phone: 1, Contestant: 2},  // duplicate phone: rejected
		{Phone: 3, Contestant: 99}, // invalid candidate: rejected
		{Phone: 4, Contestant: 2},
	}
	o := RunOracle(votes, 3, 100)
	if o.Accepted != 3 || o.Rejected != 2 || o.Total != 3 {
		t.Fatalf("oracle: %+v", o)
	}
	if o.Counts[1] != 2 || o.Counts[2] != 1 || o.Counts[3] != 0 {
		t.Fatalf("counts: %v", o.Counts)
	}
}

func TestOracleElimination(t *testing.T) {
	// 3 candidates, eliminate every 4 votes. Votes: c1 x2, c2 x1, c3 x1.
	votes := make([]workload.Vote, 0, 8)
	seq := []int64{1, 1, 2, 3} // after 4th vote: lowest = c2 (count 1, tie with c3 -> lower id)
	for i, c := range seq {
		votes = append(votes, workload.Vote{Phone: int64(100 + i), Contestant: c})
	}
	o := RunOracle(votes, 3, 4)
	if len(o.Eliminations) != 1 || o.Eliminations[0] != 2 {
		t.Fatalf("eliminations: %v", o.Eliminations)
	}
	// Phone 102 (voted c2) may vote again.
	votes = append(votes, workload.Vote{Phone: 102, Contestant: 3})
	o = RunOracle(votes, 3, 4)
	if o.Counts[3] != 2 {
		t.Fatalf("revote not counted: %v", o.Counts)
	}
}

func TestSStoreMatchesOracleSmall(t *testing.T) {
	cfg := workload.DefaultVoterConfig(7, 500)
	cfg.Contestants = 5
	votes := workload.Votes(cfg)
	o := RunOracle(votes, cfg.Contestants, EliminateEvery)

	st := newSStore(t, cfg.Contestants)
	defer st.Stop()
	if err := RunSStore(st, votes); err != nil {
		t.Fatal(err)
	}
	d, err := Audit(st, o)
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsClean() {
		t.Fatalf("S-Store diverged from oracle: %s", d)
	}
	if o.Winner != 0 {
		w, _ := WinnerOf(st)
		if w != o.Winner {
			t.Fatalf("winner %d want %d", w, o.Winner)
		}
	}
}

func TestSStoreMatchesOracleFullShow(t *testing.T) {
	// A full 25-candidate show: the feed drives all 24 eliminations and a
	// winner, exactly as the oracle computes them. (Rejections — invalid
	// candidates, duplicate phones, votes for eliminated candidates —
	// mean raw votes exceed the 2400 accepted ones needed.)
	cfg := workload.DefaultVoterConfig(42, 6000)
	votes := workload.Votes(cfg)
	o := RunOracle(votes, cfg.Contestants, EliminateEvery)
	if o.Winner == 0 {
		t.Fatalf("feed too small: no winner (total=%d, elims=%d)", o.Total, len(o.Eliminations))
	}

	st := newSStore(t, cfg.Contestants)
	defer st.Stop()
	if err := RunSStore(st, votes); err != nil {
		t.Fatal(err)
	}
	d, err := Audit(st, o)
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsClean() {
		t.Fatalf("S-Store diverged: %s", d)
	}
	w, _ := WinnerOf(st)
	if w != o.Winner {
		t.Fatalf("winner %d want %d", w, o.Winner)
	}
}

func TestHStoreSequentialIsCorrect(t *testing.T) {
	// Pipeline=1: the client fully serializes the workflow; the baseline
	// is then correct (and slow — that is the E2 story).
	cfg := workload.DefaultVoterConfig(42, 1200)
	cfg.Contestants = 8
	votes := workload.Votes(cfg)
	o := RunOracle(votes, cfg.Contestants, EliminateEvery)

	st := newHStore(t, cfg.Contestants)
	defer st.Stop()
	cl := &HClient{St: st, Pipeline: 1, MaintainTrending: true}
	if err := cl.Run(votes); err != nil {
		t.Fatal(err)
	}
	d, err := Audit(st, o)
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsClean() {
		t.Fatalf("sequential H-Store diverged: %s", d)
	}
}

func TestHStorePipelinedProducesAnomalies(t *testing.T) {
	// The paper's E1 claim: with asynchronous submission the naïve
	// H-Store implementation yields incorrect results. Anomalies must be
	// nonzero and grow (weakly) with pipeline depth.
	// Uniform popularity keeps the bottom candidates in a dead heat, so a
	// few out-of-order votes at an elimination boundary flip who is
	// lowest — the race §3.1 describes.
	cfg := workload.DefaultVoterConfig(42, 3000)
	cfg.Skew = 0
	votes := workload.Votes(cfg)
	o := RunOracle(votes, cfg.Contestants, EliminateEvery)

	prev := -1
	for _, pipeline := range []int{8, 32} {
		st := newHStore(t, cfg.Contestants)
		cl := &HClient{St: st, Pipeline: pipeline}
		if err := cl.Run(votes); err != nil {
			t.Fatal(err)
		}
		d, err := Audit(st, o)
		if err != nil {
			t.Fatal(err)
		}
		st.Stop()
		if d.IsClean() {
			t.Fatalf("pipeline %d: expected anomalies, got a clean run", pipeline)
		}
		t.Logf("pipeline=%d: %s", pipeline, d)
		if d.Anomalies() < prev/4 {
			t.Errorf("anomalies collapsed unexpectedly: %d after %d", d.Anomalies(), prev)
		}
		prev = d.Anomalies()
	}
}

func TestLeaderboards(t *testing.T) {
	cfg := workload.DefaultVoterConfig(3, 400)
	cfg.Contestants = 6
	votes := workload.Votes(cfg)
	st := newSStore(t, cfg.Contestants)
	defer st.Stop()
	if err := RunSStore(st, votes); err != nil {
		t.Fatal(err)
	}
	top, bottom, trend, err := Leaderboards(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) == 0 || len(bottom) == 0 {
		t.Fatalf("empty leaderboards: top=%v bottom=%v", top, bottom)
	}
	// 400 votes with default skew: the trending window (100) has slid, so
	// the trending leaderboard is populated.
	if len(trend) == 0 {
		t.Fatal("trending leaderboard empty after 400 votes")
	}
	// Trending totals cannot exceed the window size.
	res, err := st.Query("SELECT SUM(n) FROM trending")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got > TrendWindow {
		t.Fatalf("trending holds %d votes, window is %d", got, TrendWindow)
	}
}

func TestRoundTripAccounting(t *testing.T) {
	// E3's mechanism: S-Store pays 1 client→PE trip per vote; the H-Store
	// client pays one per stage invocation plus trend maintenance.
	cfg := workload.DefaultVoterConfig(5, 300)
	cfg.Contestants = 5
	votes := workload.Votes(cfg)

	ss := newSStore(t, cfg.Contestants)
	if err := RunSStore(ss, votes); err != nil {
		t.Fatal(err)
	}
	ssTrips := ss.Metrics().ClientToPE.Load()
	ss.Stop()

	hs := newHStore(t, cfg.Contestants)
	cl := &HClient{St: hs, Pipeline: 1, MaintainTrending: true}
	if err := cl.Run(votes); err != nil {
		t.Fatal(err)
	}
	hsTrips := hs.Metrics().ClientToPE.Load()
	hs.Stop()

	if ssTrips > int64(len(votes))+5 {
		t.Errorf("S-Store trips = %d for %d votes", ssTrips, len(votes))
	}
	if hsTrips < 2*ssTrips {
		t.Errorf("H-Store should pay ≥2× the client trips: hs=%d ss=%d", hsTrips, ssTrips)
	}
}

func TestSStoreVsHStoreDivergenceSideBySide(t *testing.T) {
	// The demo itself: same feed into both engines side by side; S-Store
	// stays on the oracle while pipelined H-Store drifts.
	cfg := workload.DefaultVoterConfig(99, 2000)
	cfg.Skew = 0
	votes := workload.Votes(cfg)
	o := RunOracle(votes, cfg.Contestants, EliminateEvery)

	ss := newSStore(t, cfg.Contestants)
	defer ss.Stop()
	if err := RunSStore(ss, votes); err != nil {
		t.Fatal(err)
	}
	dSS, err := Audit(ss, o)
	if err != nil {
		t.Fatal(err)
	}

	hs := newHStore(t, cfg.Contestants)
	defer hs.Stop()
	cl := &HClient{St: hs, Pipeline: 16}
	if err := cl.Run(votes); err != nil {
		t.Fatal(err)
	}
	dHS, err := Audit(hs, o)
	if err != nil {
		t.Fatal(err)
	}
	if !dSS.IsClean() {
		t.Errorf("S-Store: %s", dSS)
	}
	if dHS.IsClean() {
		t.Error("H-Store pipelined run unexpectedly clean")
	}
	t.Logf("side by side: S-Store %s | H-Store %s", dSS, dHS)
}
