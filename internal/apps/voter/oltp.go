package voter

import (
	"repro/internal/core"
	"repro/internal/ee"
	"repro/internal/pe"
	"repro/internal/storage"
	"repro/internal/types"
)

// This file is the Call-driven OLTP variant of Voter: one stored procedure
// cast_vote(phone, contestant, ts) validates and counts a vote in a single
// transaction — the classic H-Store/VoltDB Voter benchmark shape. Unlike
// the streaming variants, every vote is a direct client invocation and so
// a command-log record whose durability gates the acknowledgement; this is
// the workload the E7 durable-throughput experiment measures sync policies
// against. Partitioned by phone, with vote_counts holding partition-local
// partials exactly like the scale-out workflow variant (partitioned.go).

const oltpDDL = `
	CREATE TABLE contestants (id INT PRIMARY KEY, name VARCHAR NOT NULL);
	CREATE TABLE votes (phone BIGINT PRIMARY KEY, contestant INT NOT NULL, ts BIGINT) PARTITION BY phone;
	CREATE TABLE vote_counts (contestant INT PRIMARY KEY, n BIGINT DEFAULT 0) PARTITION BY contestant PARTIAL;
`

// SetupOLTP installs the Call-driven Voter variant: schema, replicated
// seed rows on every partition, and the cast_vote procedure.
func SetupOLTP(st *core.Store, contestants int) error {
	if err := st.ExecScript(oltpDDL); err != nil {
		return err
	}
	for i := 0; i < st.NumPartitions(); i++ {
		exec := st.EEAt(i)
		ctx := &ee.ExecCtx{Undo: storage.NewUndoLog()}
		for c := 1; c <= contestants; c++ {
			id := types.NewInt(int64(c))
			if _, err := exec.ExecSQL(ctx, "INSERT INTO contestants VALUES (?, ?)",
				id, types.NewString(contestantName(c))); err != nil {
				return err
			}
			if _, err := exec.ExecSQL(ctx, "INSERT INTO vote_counts (contestant, n) VALUES (?, 0)", id); err != nil {
				return err
			}
		}
	}
	return st.RegisterProcedure(castVote())
}

// castVote is the single-transaction Voter procedure: contestant must
// exist, the phone must not have voted (the phone shard is co-located via
// PartitionParam), then the vote lands and the partition-local partial
// count increments.
func castVote() *pe.Procedure {
	return &pe.Procedure{
		Name:           "cast_vote",
		ReadSet:        []string{"contestants"},
		WriteSet:       []string{"votes", "vote_counts"},
		PartitionParam: 1,
		Handler: func(ctx *pe.ProcCtx) error {
			phone, cand := ctx.Params[0], ctx.Params[1]
			c, err := ctx.QueryRow("SELECT id FROM contestants WHERE id = ?", cand)
			if err != nil {
				return err
			}
			if c == nil {
				return nil // invalid candidate: accepted, not counted
			}
			p, err := ctx.QueryRow("SELECT phone FROM votes WHERE phone = ?", phone)
			if err != nil {
				return err
			}
			if p != nil {
				return nil // this phone already voted
			}
			if _, err := ctx.Exec("INSERT INTO votes VALUES (?, ?, ?)", phone, cand, ctx.Params[2]); err != nil {
				return err
			}
			// Upsert the partition-local partial: partitions added by a
			// rebalance start with an empty vote_counts (PARTIAL relations
			// are never copied), so the first count on a fresh partition
			// creates its row.
			res, err := ctx.Exec("UPDATE vote_counts SET n = n + 1 WHERE contestant = ?", cand)
			if err != nil {
				return err
			}
			if res.RowsAffected == 0 {
				_, err = ctx.Exec("INSERT INTO vote_counts (contestant, n) VALUES (?, 1)", cand)
			}
			return err
		},
	}
}
