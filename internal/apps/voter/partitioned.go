package voter

import (
	"repro/internal/core"
	"repro/internal/pe"
	"repro/internal/workload"
)

// This file is the scale-out variant of the Voter workload: the same
// validate → count pipeline, but over PARTITION BY relations so a
// multi-partition store hash-splits the vote feed by phone and runs the
// workflow independently on every partition (the H-Store execution model
// the paper builds on). Global elimination is inherently cross-partition —
// it reads the worldwide minimum — so this variant drops it; the
// leaderboard becomes a distributed aggregation over per-partition partial
// counts instead. See DESIGN.md §4 for the partitioning rules.

// partitionedDDL declares the hash-partitioned Voter schema. votes and the
// two streams are split by phone; contestants is replicated reference
// data; vote_counts and trending hold partition-local partials — they are
// declared PARTITION BY so ad-hoc queries fan out and re-aggregate them.
const partitionedDDL = `
	CREATE TABLE contestants (id INT PRIMARY KEY, name VARCHAR NOT NULL);
	CREATE TABLE votes (phone BIGINT PRIMARY KEY, contestant INT NOT NULL, ts BIGINT) PARTITION BY phone;
	CREATE INDEX votes_by_contestant ON votes (contestant);
	CREATE TABLE vote_counts (contestant INT PRIMARY KEY, n BIGINT DEFAULT 0) PARTITION BY contestant PARTIAL;
	CREATE TABLE trending (contestant INT PRIMARY KEY, n BIGINT) PARTITION BY contestant PARTIAL;
	CREATE STREAM votes_in (phone BIGINT, contestant INT, ts BIGINT) PARTITION BY phone;
	CREATE STREAM validated (phone BIGINT, contestant INT, ts BIGINT) PARTITION BY phone;
	CREATE WINDOW w_trend ON validated ROWS 100 SLIDE 1;
`

// SetupPartitioned installs the partitioned Voter variant: schema,
// replicated seed data on every partition, the SP1→SP2 workflow, and the
// partition-local trending window.
func SetupPartitioned(st *core.Store, contestants int) error {
	if err := st.ExecScript(partitionedDDL); err != nil {
		return err
	}
	// Seed every partition replica directly: contestants is reference data,
	// and each partition needs its own zeroed partial-count rows.
	for i := 0; i < st.NumPartitions(); i++ {
		if err := seedEngine(st.EEAt(i), contestants, false); err != nil {
			return err
		}
	}
	if err := st.RegisterProcedure(sp1Partitioned()); err != nil {
		return err
	}
	if err := st.RegisterProcedure(sp2Partitioned()); err != nil {
		return err
	}
	// One graph deployed to every partition; each hash shard runs it
	// independently over its share of the vote feed.
	return st.Deploy(&core.Dataflow{
		Name: "voter_partitioned",
		Nodes: []core.DataflowNode{
			{Proc: "sp1p_validate", Input: "votes_in", Batch: 1, Emits: []string{"validated"}},
			{Proc: "sp2p_count", Input: "validated", Batch: 1},
		},
		Triggers: []core.DataflowTrigger{{
			Name:     "trend_maintain",
			Relation: "w_trend",
			Bodies: []string{
				"UPDATE trending SET n = n + 1 WHERE contestant IN (SELECT contestant FROM inserted)",
				"UPDATE trending SET n = n - 1 WHERE contestant IN (SELECT contestant FROM expired)",
			},
		}},
	})
}

// sp1Partitioned validates a vote against partition-local state: the phone
// shard is co-located (votes is partitioned by phone, like the stream), so
// the one-vote-per-phone check never leaves the partition.
func sp1Partitioned() *pe.Procedure {
	return &pe.Procedure{
		Name:     "sp1p_validate",
		ReadSet:  []string{"contestants"},
		WriteSet: []string{"votes"},
		Handler: func(ctx *pe.ProcCtx) error {
			for _, v := range ctx.Batch {
				phone, cand := v[0], v[1]
				c, err := ctx.QueryRow("SELECT id FROM contestants WHERE id = ?", cand)
				if err != nil {
					return err
				}
				if c == nil {
					continue // invalid candidate
				}
				p, err := ctx.QueryRow("SELECT phone FROM votes WHERE phone = ?", phone)
				if err != nil {
					return err
				}
				if p != nil {
					continue // this phone already voted (shard-local check)
				}
				if _, err := ctx.Exec("INSERT INTO votes VALUES (?, ?, ?)", phone, cand, v[2]); err != nil {
					return err
				}
				if err := ctx.Emit("validated", v); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// sp2Partitioned maintains the partition-local partial counts and probes
// the candidate's current support (an index scan over the local votes
// shard — the per-operation working set that shrinks as partitions are
// added, which is where hash-partitioning buys its throughput).
func sp2Partitioned() *pe.Procedure {
	return &pe.Procedure{
		Name:     "sp2p_count",
		ReadSet:  []string{"votes"},
		WriteSet: []string{"vote_counts", "trending"},
		Handler: func(ctx *pe.ProcCtx) error {
			for _, v := range ctx.Batch {
				// Upsert the partition-local partial: partitions added by a
				// rebalance start with empty PARTIAL tables.
				res, err := ctx.Exec("UPDATE vote_counts SET n = n + 1 WHERE contestant = ?", v[1])
				if err != nil {
					return err
				}
				if res.RowsAffected == 0 {
					if _, err := ctx.Exec("INSERT INTO vote_counts (contestant, n) VALUES (?, 1)", v[1]); err != nil {
						return err
					}
				}
				if _, err := ctx.Query("SELECT COUNT(*) FROM votes WHERE contestant = ?", v[1]); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// RunPartitioned pushes the feed through the router in chunks; the router
// hash-splits each chunk across partitions by phone.
func RunPartitioned(st *core.Store, votes []workload.Vote, chunk int) error {
	return RunSStoreChunked(st, votes, chunk)
}

// ExpectedValidVotes computes, without the engine, how many votes of the
// feed survive validation when elimination is disabled: the first vote of
// each phone for an existing candidate. It reuses the sequential oracle
// (oracle.go, the single reference for validation semantics) with the
// elimination threshold pushed past the end of the feed.
func ExpectedValidVotes(votes []workload.Vote, contestants int) int64 {
	return int64(RunOracle(votes, contestants, len(votes)+1).Accepted)
}
