package voter

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/wal"
	"repro/internal/workload"
)

// globalFeed is a small feed with enough duplicates and invalid candidates
// to exercise every rejection path, sized so several eliminations fire.
func globalFeed(seed int64, n int) ([]workload.Vote, int) {
	const contestants = 5
	cfg := workload.VoterConfig{
		Seed:        seed,
		NumVotes:    n,
		Contestants: contestants,
		PhoneSpace:  1 << 16,
		InvalidPct:  4,
		DupPct:      10,
		Skew:        0.7,
	}
	return workload.Votes(cfg), contestants
}

// checkGlobalMatchesOracle compares the engine's end state and elimination
// history against the sequential oracle for the same feed.
func checkGlobalMatchesOracle(t *testing.T, st *core.Store, o *Oracle,
	accepted int64, eliminations, elimTotals []int64) {
	t.Helper()
	if accepted != int64(o.Accepted) {
		t.Fatalf("accepted = %d, oracle %d", accepted, o.Accepted)
	}
	if fmt.Sprint(eliminations) != fmt.Sprint(o.Eliminations) {
		t.Fatalf("eliminations = %v, oracle %v", eliminations, o.Eliminations)
	}
	if fmt.Sprint(elimTotals) != fmt.Sprint(o.EliminationTotals) {
		t.Fatalf("elimination totals = %v, oracle %v", elimTotals, o.EliminationTotals)
	}
	alive, err := GlobalAlive(st)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(alive) != fmt.Sprint(o.AliveSorted()) {
		t.Fatalf("alive = %v, oracle %v", alive, o.AliveSorted())
	}
	counts, err := GlobalCounts(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != len(o.Counts) {
		t.Fatalf("count rows = %v, oracle %v", counts, o.Counts)
	}
	for id, n := range o.Counts {
		if counts[id] != n {
			t.Fatalf("counts[%d] = %d, oracle %d (%v vs %v)", id, counts[id], n, counts, o.Counts)
		}
	}
}

// TestGlobalEliminationMatchesOracle drives the partitioned store with
// global elimination — every vote one coordinated cross-partition
// transaction — and requires it to match the sequential oracle vote for
// vote and elimination for elimination. This is the workload §4.3 said a
// coordinator-less store cannot run.
func TestGlobalEliminationMatchesOracle(t *testing.T) {
	votes, contestants := globalFeed(7, 400)
	const every = 40
	o := RunOracle(votes, contestants, every)
	if len(o.Eliminations) == 0 {
		t.Fatal("feed produced no eliminations; test proves nothing")
	}

	st := core.Open(core.Config{Partitions: 3})
	if err := SetupGlobal(st, contestants); err != nil {
		t.Fatal(err)
	}
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	accepted, eliminations, elimTotals, err := RunGlobal(st, votes, every)
	if err != nil {
		t.Fatal(err)
	}
	checkGlobalMatchesOracle(t, st, o, accepted, eliminations, elimTotals)
	if st.Metrics().MPTxns.Load() == 0 {
		t.Fatal("no coordinated transactions ran; the test did not exercise 2PC")
	}
}

// TestGlobalEliminationSurvivesRestart splits the feed across a crash:
// half the votes run on a durable group-commit store, the store stops, a
// fresh store recovers from the logs — replaying the coordinated
// transactions' PREPARE records against the decision log — and the second
// half runs on the recovered store. The end state must still match the
// oracle exactly.
func TestGlobalEliminationSurvivesRestart(t *testing.T) {
	votes, contestants := globalFeed(11, 300)
	const every = 30
	o := RunOracle(votes, contestants, every)
	if len(o.Eliminations) < 2 {
		t.Fatal("want at least 2 eliminations to land on both sides of the restart")
	}
	dir := t.TempDir()
	cfg := core.Config{
		Dir:                 dir,
		Sync:                wal.SyncGroupCommit,
		GroupCommitInterval: 200 * time.Microsecond,
		Partitions:          3,
	}

	build := func() *core.Store {
		st := core.Open(cfg)
		if err := SetupGlobal(st, contestants); err != nil {
			t.Fatal(err)
		}
		return st
	}
	st := build()
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	half := len(votes) / 2
	acc1, elim1, tot1, err := RunGlobal(st, votes[:half], every)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Stop(); err != nil {
		t.Fatal(err)
	}

	st2 := build()
	if err := st2.Start(); err != nil { // recovers: replay + decision resolution
		t.Fatal(err)
	}
	defer st2.Stop()
	acc2, elim2, tot2, err := RunGlobal(st2, votes[half:], every)
	if err != nil {
		t.Fatal(err)
	}
	accepted := acc1 + acc2
	eliminations := append(append([]int64{}, elim1...), elim2...)
	elimTotals := append([]int64{}, tot1...)
	for _, tt := range tot2 {
		elimTotals = append(elimTotals, tt+acc1)
	}
	checkGlobalMatchesOracle(t, st2, o, accepted, eliminations, elimTotals)
}
