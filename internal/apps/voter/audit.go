package voter

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Divergence quantifies how far an engine's final state drifted from the
// oracle — each field is one of the anomaly classes §3.1 predicts for the
// naïve H-Store implementation. A correct run is the zero value.
type Divergence struct {
	// WrongEliminations counts positions where the elimination order
	// differs from the oracle ("candidate Y removed instead of X").
	WrongEliminations int
	// MissedEliminations is the |count difference| in eliminations.
	MissedEliminations int
	// FalseWinner reports a winner that differs from the oracle's.
	FalseWinner bool
	// CountDiffs counts surviving candidates whose vote totals differ.
	CountDiffs int
	// OrphanVotes counts recorded votes that reference an eliminated
	// candidate ("votes for an invalid candidate counted").
	OrphanVotes int
	// TotalDiff is engineTotal - oracleTotal (accepted-vote drift).
	TotalDiff int64
	// SurvivorDiffs counts candidates alive in one state but not the other.
	SurvivorDiffs int
}

// IsClean reports a divergence-free run.
func (d *Divergence) IsClean() bool {
	return d.WrongEliminations == 0 && d.MissedEliminations == 0 && !d.FalseWinner &&
		d.CountDiffs == 0 && d.OrphanVotes == 0 && d.TotalDiff == 0 && d.SurvivorDiffs == 0
}

// Anomalies returns the scalar anomaly count the experiment tables report.
func (d *Divergence) Anomalies() int {
	n := d.WrongEliminations + d.MissedEliminations + d.CountDiffs + d.SurvivorDiffs + d.OrphanVotes
	if d.FalseWinner {
		n++
	}
	if d.TotalDiff != 0 {
		n++
	}
	return n
}

// String renders a compact anomaly report.
func (d *Divergence) String() string {
	if d.IsClean() {
		return "clean (0 anomalies)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d anomalies:", d.Anomalies())
	if d.WrongEliminations > 0 {
		fmt.Fprintf(&b, " wrongElim=%d", d.WrongEliminations)
	}
	if d.MissedEliminations > 0 {
		fmt.Fprintf(&b, " missedElim=%d", d.MissedEliminations)
	}
	if d.FalseWinner {
		b.WriteString(" falseWinner")
	}
	if d.CountDiffs > 0 {
		fmt.Fprintf(&b, " countDiffs=%d", d.CountDiffs)
	}
	if d.OrphanVotes > 0 {
		fmt.Fprintf(&b, " orphanVotes=%d", d.OrphanVotes)
	}
	if d.TotalDiff != 0 {
		fmt.Fprintf(&b, " totalDiff=%d", d.TotalDiff)
	}
	if d.SurvivorDiffs > 0 {
		fmt.Fprintf(&b, " survivorDiffs=%d", d.SurvivorDiffs)
	}
	return b.String()
}

// Audit compares an engine's final Voter state against the oracle.
func Audit(st *core.Store, o *Oracle) (*Divergence, error) {
	d := &Divergence{}

	// Elimination order.
	res, err := st.Query("SELECT contestant FROM eliminations ORDER BY ord")
	if err != nil {
		return nil, err
	}
	got := make([]int64, 0, len(res.Rows))
	for _, r := range res.Rows {
		got = append(got, r[0].Int())
	}
	n := min(len(got), len(o.Eliminations))
	for i := 0; i < n; i++ {
		if got[i] != o.Eliminations[i] {
			d.WrongEliminations++
		}
	}
	d.MissedEliminations = abs(len(got) - len(o.Eliminations))

	// Winner.
	res, err = st.Query("SELECT contestant FROM winner WHERE id = 0")
	if err != nil {
		return nil, err
	}
	var gotWinner int64
	if len(res.Rows) > 0 {
		gotWinner = res.Rows[0][0].Int()
	}
	d.FalseWinner = gotWinner != o.Winner

	// Survivors and their counts.
	res, err = st.Query("SELECT contestant, n FROM vote_counts ORDER BY contestant")
	if err != nil {
		return nil, err
	}
	gotCounts := map[int64]int64{}
	for _, r := range res.Rows {
		gotCounts[r[0].Int()] = r[1].Int()
	}
	for id, want := range o.Counts {
		gotN, alive := gotCounts[id]
		if !alive {
			d.SurvivorDiffs++
			continue
		}
		if gotN != want {
			d.CountDiffs++
		}
	}
	for id := range gotCounts {
		if _, ok := o.Counts[id]; !ok {
			d.SurvivorDiffs++
		}
	}

	// Orphan votes: recorded votes whose candidate no longer exists.
	res, err = st.Query(`SELECT COUNT(*) FROM votes v
		LEFT JOIN contestants c ON c.id = v.contestant
		WHERE c.id IS NULL`)
	if err != nil {
		return nil, err
	}
	d.OrphanVotes = int(res.Rows[0][0].Int())

	// Accepted-vote total.
	res, err = st.Query("SELECT n FROM vote_totals WHERE id = 0")
	if err != nil {
		return nil, err
	}
	var gotTotal int64
	if len(res.Rows) > 0 {
		gotTotal = res.Rows[0][0].Int()
	}
	d.TotalDiff = gotTotal - o.Total
	return d, nil
}

// CountRow is one (contestant, votes) pair for display.
type CountRow struct {
	ID   int64
	Name string
	N    int64
}

// CurrentCounts reads the live per-candidate counts (display helper).
func CurrentCounts(st *core.Store) ([]CountRow, error) {
	res, err := st.Query(`SELECT c.id, c.name, vc.n FROM vote_counts vc
		JOIN contestants c ON c.id = vc.contestant ORDER BY vc.n DESC, c.id`)
	if err != nil {
		return nil, err
	}
	out := make([]CountRow, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, CountRow{ID: r[0].Int(), Name: r[1].Str(), N: r[2].Int()})
	}
	return out, nil
}

// WinnerOf returns the declared winner (0 when undecided).
func WinnerOf(st *core.Store) (int64, error) {
	res, err := st.Query("SELECT contestant FROM winner WHERE id = 0")
	if err != nil {
		return 0, err
	}
	if len(res.Rows) == 0 {
		return 0, nil
	}
	return res.Rows[0][0].Int(), nil
}

// TotalOf returns the accepted-vote total.
func TotalOf(st *core.Store) (int64, error) {
	res, err := st.Query("SELECT n FROM vote_totals WHERE id = 0")
	if err != nil {
		return 0, err
	}
	if len(res.Rows) == 0 {
		return 0, nil
	}
	return res.Rows[0][0].Int(), nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
