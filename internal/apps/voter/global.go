package voter

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ee"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/workload"
)

// This file is the variant §4.3 used to rule out: partitioned Voter WITH
// global elimination. Elimination reads the worldwide minimum — inherently
// cross-partition — so before the 2PC coordinator the partitioned app had
// to drop it (partitioned.go). Here each vote is one coordinated
// multi-partition transaction: validate and record on the phone's owning
// partition, read the global total, and when the elimination threshold
// hits, compute the worldwide-minimum candidate from the merged partial
// counts and delete it everywhere — votes, count partials, and the
// replicated contestant row — atomically with the vote that triggered it.
// Driven in arrival order it reproduces the sequential oracle (oracle.go)
// vote for vote and elimination for elimination, which no combination of
// single-partition transactions can guarantee.

// globalDDL is the partitioned OLTP schema plus per-partition partial
// rows for the global accepted-vote total (id is a dummy key; each
// partition holds one partial row, merged by fan-out SUM).
const globalDDL = oltpDDL + `
	CREATE TABLE totals_g (id INT PRIMARY KEY, n BIGINT DEFAULT 0) PARTITION BY id PARTIAL;
`

// SetupGlobal installs the globally-eliminating Voter: schema and per-
// partition seed rows (contestant reference data, zeroed count and total
// partials).
func SetupGlobal(st *core.Store, contestants int) error {
	if err := st.ExecScript(globalDDL); err != nil {
		return err
	}
	for i := 0; i < st.NumPartitions(); i++ {
		exec := st.EEAt(i)
		ctx := &ee.ExecCtx{Undo: storage.NewUndoLog()}
		for c := 1; c <= contestants; c++ {
			id := types.NewInt(int64(c))
			if _, err := exec.ExecSQL(ctx, "INSERT INTO contestants VALUES (?, ?)",
				id, types.NewString(contestantName(c))); err != nil {
				return err
			}
			if _, err := exec.ExecSQL(ctx, "INSERT INTO vote_counts (contestant, n) VALUES (?, 0)", id); err != nil {
				return err
			}
		}
		if _, err := exec.ExecSQL(ctx, "INSERT INTO totals_g VALUES (0, 0)"); err != nil {
			return err
		}
	}
	return nil
}

// CastVoteGlobal processes one vote with the full §3.1 semantics as a
// single atomic cross-partition transaction. It returns whether the vote
// was accepted and, when this vote crossed an elimination threshold, the
// id of the eliminated candidate (0 otherwise).
func CastVoteGlobal(st *core.Store, phone, contestant, ts int64, eliminateEvery int) (accepted bool, eliminated int64, err error) {
	err = st.MultiPartitionTxn(func(tx *core.MPTxn) error {
		owner := tx.PartitionFor(types.NewInt(phone))
		// Voting closes once a single contestant remains (contestants is
		// replicated, so the owning partition's replica has the count).
		alive, err := tx.QueryRow(owner, "SELECT COUNT(*) FROM contestants")
		if err != nil {
			return err
		}
		if alive[0].Int() <= 1 {
			return nil // winner declared: rejected
		}
		c, err := tx.QueryRow(owner, "SELECT id FROM contestants WHERE id = ?", types.NewInt(contestant))
		if err != nil {
			return err
		}
		if c == nil {
			return nil // eliminated or unknown candidate: rejected
		}
		// The phone's live vote, if any, is co-located (votes PARTITION BY
		// phone) — a shard-local uniqueness check with global meaning.
		p, err := tx.QueryRow(owner, "SELECT phone FROM votes WHERE phone = ?", types.NewInt(phone))
		if err != nil {
			return err
		}
		if p != nil {
			return nil // phone already voted: rejected
		}
		if _, err := tx.Exec(owner, "INSERT INTO votes VALUES (?, ?, ?)",
			types.NewInt(phone), types.NewInt(contestant), types.NewInt(ts)); err != nil {
			return err
		}
		// Upserts: PARTIAL tables on partitions added by a rebalance start
		// empty, so the first count there creates the partial row.
		res, err := tx.Exec(owner, "UPDATE vote_counts SET n = n + 1 WHERE contestant = ?",
			types.NewInt(contestant))
		if err != nil {
			return err
		}
		if res.RowsAffected == 0 {
			if _, err := tx.Exec(owner, "INSERT INTO vote_counts (contestant, n) VALUES (?, 1)",
				types.NewInt(contestant)); err != nil {
				return err
			}
		}
		res, err = tx.Exec(owner, "UPDATE totals_g SET n = n + 1 WHERE id = 0")
		if err != nil {
			return err
		}
		if res.RowsAffected == 0 {
			if _, err := tx.Exec(owner, "INSERT INTO totals_g VALUES (0, 1)"); err != nil {
				return err
			}
		}
		accepted = true

		// Global accepted-vote total: sum of the per-partition partials,
		// read inside the transaction (every partition is parked, so the
		// sum is exact, including this vote).
		totalRes, err := tx.QueryAll("SELECT n FROM totals_g WHERE id = 0")
		if err != nil {
			return err
		}
		var total int64
		for _, r := range totalRes {
			for _, row := range r.Rows {
				total += row[0].Int()
			}
		}
		if eliminateEvery <= 0 || total%int64(eliminateEvery) != 0 {
			return nil
		}

		// Elimination: merge the per-partition count partials and remove
		// the worldwide minimum (ties break toward the lower id, matching
		// the oracle) on every partition.
		countRes, err := tx.QueryAll("SELECT contestant, n FROM vote_counts")
		if err != nil {
			return err
		}
		counts := make(map[int64]int64)
		for _, r := range countRes {
			for _, row := range r.Rows {
				counts[row[0].Int()] += row[1].Int()
			}
		}
		loser := int64(0)
		for id, n := range counts {
			if loser == 0 || n < counts[loser] || (n == counts[loser] && id < loser) {
				loser = id
			}
		}
		if loser == 0 {
			return fmt.Errorf("voter: no candidate to eliminate")
		}
		for part := 0; part < tx.NumPartitions(); part++ {
			// Deleting the loser's votes returns them to their casters
			// (those phones may vote again); the count partial disappears
			// and the replicated contestant row is removed everywhere.
			if _, err := tx.Exec(part, "DELETE FROM votes WHERE contestant = ?", types.NewInt(loser)); err != nil {
				return err
			}
			if _, err := tx.Exec(part, "DELETE FROM vote_counts WHERE contestant = ?", types.NewInt(loser)); err != nil {
				return err
			}
			if _, err := tx.Exec(part, "DELETE FROM contestants WHERE id = ?", types.NewInt(loser)); err != nil {
				return err
			}
		}
		eliminated = loser
		return nil
	})
	if err != nil {
		return false, 0, err
	}
	return accepted, eliminated, nil
}

// RunGlobal drives a vote feed through CastVoteGlobal in arrival order,
// collecting the elimination sequence — the shape the oracle comparison
// test and the E8 experiment share.
func RunGlobal(st *core.Store, votes []workload.Vote, eliminateEvery int) (accepted int64, eliminations []int64, elimTotals []int64, err error) {
	for _, v := range votes {
		ok, elim, err := CastVoteGlobal(st, v.Phone, v.Contestant, v.TS, eliminateEvery)
		if err != nil {
			return accepted, eliminations, elimTotals, err
		}
		if ok {
			accepted++
		}
		if elim != 0 {
			eliminations = append(eliminations, elim)
			elimTotals = append(elimTotals, accepted)
		}
	}
	return accepted, eliminations, elimTotals, nil
}

// GlobalAlive returns the live candidate ids (ascending) from the
// replicated contestants table.
func GlobalAlive(st *core.Store) ([]int64, error) {
	res, err := st.Query("SELECT id FROM contestants ORDER BY id")
	if err != nil {
		return nil, err
	}
	out := make([]int64, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, r[0].Int())
	}
	return out, nil
}

// GlobalCounts returns the merged per-candidate live vote counts.
func GlobalCounts(st *core.Store) (map[int64]int64, error) {
	res, err := st.Query("SELECT contestant, SUM(n) FROM vote_counts GROUP BY contestant")
	if err != nil {
		return nil, err
	}
	out := make(map[int64]int64, len(res.Rows))
	for _, r := range res.Rows {
		out[r[0].Int()] = r[1].Int()
	}
	return out, nil
}
