package voter

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/types"
	"repro/internal/workload"
)

// TestRebalanceLiveVoterOracle grows a store 2 -> 4 partitions while the
// OLTP Voter feed is in full flight, with snapshot readers aggregating the
// partition-local partials throughout. The sequential oracle is the
// acceptance bar: every valid vote counted exactly once — a slot migration
// that lost a row, double-applied one, or briefly routed a phone to two
// owners would break either SUM(n) or the votes row count. Run with -race.
func TestRebalanceLiveVoterOracle(t *testing.T) {
	const contestants = 25
	cfg := workload.DefaultVoterConfig(7, 4000)
	feed := workload.Votes(cfg)

	st := core.Open(core.Config{Partitions: 2})
	if err := SetupOLTP(st, contestants); err != nil {
		t.Fatal(err)
	}
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	defer st.Stop()

	const pipeline = 4
	next := make(chan workload.Vote, pipeline)
	errs := make([]error, pipeline)
	var wg sync.WaitGroup
	for w := 0; w < pipeline; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for v := range next {
				if _, err := st.Call("cast_vote",
					types.NewInt(v.Phone), types.NewInt(v.Contestant), types.NewInt(v.TS)); err != nil {
					errs[w] = err
					break
				}
			}
			for range next {
			} // drain on error so the feeder never blocks
		}(w)
	}
	stopRead := make(chan struct{})
	readErr := make(chan error, 1)
	var readWG sync.WaitGroup
	readWG.Add(1)
	go func() { // concurrent fan-out reader over the migrating partials
		defer readWG.Done()
		for {
			select {
			case <-stopRead:
				return
			default:
			}
			if _, err := st.Query("SELECT SUM(n) FROM vote_counts"); err != nil {
				readErr <- err
				return
			}
		}
	}()

	for i, v := range feed {
		if i == len(feed)/3 { // grow mid-feed, under live load
			if err := st.Rebalance(4); err != nil {
				t.Fatal(err)
			}
		}
		next <- v
	}
	close(next)
	wg.Wait()
	close(stopRead)
	readWG.Wait()
	select {
	case err := <-readErr:
		t.Fatal(err)
	default:
	}
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if st.NumPartitions() != 4 {
		t.Fatalf("NumPartitions = %d", st.NumPartitions())
	}

	want := ExpectedValidVotes(feed, contestants)
	sum, err := st.Query("SELECT SUM(n) FROM vote_counts")
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.Rows[0][0].Int(); got != want {
		t.Fatalf("SUM(vote_counts.n) = %d want %d (lost or duplicated votes)", got, want)
	}
	cnt, err := st.Query("SELECT COUNT(*) FROM votes")
	if err != nil {
		t.Fatal(err)
	}
	if got := cnt.Rows[0][0].Int(); got != want {
		t.Fatalf("COUNT(votes) = %d want %d", got, want)
	}
}
