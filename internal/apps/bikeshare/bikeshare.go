// Package bikeshare implements the paper's §3.2 application: a city bike
// share whose workload mixes pure OLTP (checkouts, returns, payment), pure
// streaming (1 Hz GPS per bike, real-time ride statistics, stolen-bike
// alerts), and transactional stream/OLTP combinations (station-depletion
// discounts that are offered by a streaming workflow stage and accepted
// atomically by OLTP requests). One engine runs all three classes — the
// paper's versatility claim (E4).
package bikeshare

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/ee"
	"repro/internal/pe"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/workload"
)

// StolenSpeedMS is the stolen-bike threshold: the paper's 60 mph.
const StolenSpeedMS = 26.8

// LowWater is the bikes-available level that triggers a discount offer.
const LowWater = 2

// DiscountWindowUS is the 15-minute acceptance window, in microseconds.
const DiscountWindowUS = 15 * 60 * 1_000_000

// CentsPerMinute is the rental rate.
const CentsPerMinute = 15

// DDL defines the full schema: OLTP tables, the GPS stream, its windows,
// and the internal workflow streams.
const DDL = `
	CREATE TABLE stations (id INT PRIMARY KEY, name VARCHAR NOT NULL,
		lat FLOAT, lon FLOAT, docks INT NOT NULL, bikes_avail INT NOT NULL);
	CREATE TABLE bikes (id INT PRIMARY KEY, station INT, rider INT);
	CREATE TABLE riders (id INT PRIMARY KEY, name VARCHAR NOT NULL, spent_cents BIGINT DEFAULT 0);
	CREATE TABLE rides (id INT PRIMARY KEY, rider INT NOT NULL, bike INT NOT NULL,
		start_station INT, end_station INT, start_ts BIGINT, end_ts BIGINT,
		cost_cents BIGINT, active INT NOT NULL);
	CREATE INDEX rides_by_rider ON rides (rider);
	CREATE TABLE ride_stats (bike INT PRIMARY KEY, dist_m FLOAT DEFAULT 0,
		max_speed FLOAT DEFAULT 0, last_ts BIGINT, last_lat FLOAT, last_lon FLOAT,
		points BIGINT DEFAULT 0);
	CREATE TABLE alerts (seq INT PRIMARY KEY, bike INT, ts BIGINT, speed_ms FLOAT, kind VARCHAR);
	CREATE TABLE discounts (station INT PRIMARY KEY, rider INT, pct INT,
		expires BIGINT, state VARCHAR NOT NULL);

	CREATE STREAM gps (bike INT, ts BIGINT, lat FLOAT, lon FLOAT);
	CREATE STREAM alert_s (bike INT, ts BIGINT, speed_ms FLOAT);
	CREATE STREAM station_events (station INT, ts BIGINT);
	CREATE WINDOW w_recent ON gps RANGE 10000000 SLIDE 1000000 TIMESTAMP ts;
`

// Setup installs schema and procedures, deploys the whole mixed workload
// as one "bikeshare" dataflow graph, then seeds stations/bikes/riders
// deterministically. The graph captures all three workload classes: the
// GPS chain (gps → bs_gps → alert_s → bs_alert) is pure streaming, while
// bs_checkout and bs_return are OLTP entry nodes that participate by
// emitting station_events into the discount stage — the transactional
// stream/OLTP combination the paper's §3.2 is about.
func Setup(st *core.Store, stations, bikesPerStation, riders int) error {
	if err := st.ExecScript(DDL); err != nil {
		return err
	}
	for _, p := range []*pe.Procedure{
		checkoutProc(), returnProc(), acceptDiscountProc(), expireDiscountsProc(),
		gpsProc(), alertProc(), offerProc(),
	} {
		if err := st.RegisterProcedure(p); err != nil {
			return err
		}
	}
	if err := st.Deploy(&core.Dataflow{
		Name: "bikeshare",
		Nodes: []core.DataflowNode{
			{Proc: "bs_checkout", Emits: []string{"station_events"}},
			{Proc: "bs_return", Emits: []string{"station_events"}},
			{Proc: "bs_gps", Input: "gps", Batch: 16, Emits: []string{"alert_s"}},
			{Proc: "bs_alert", Input: "alert_s", Batch: 1},
			{Proc: "bs_offer", Input: "station_events", Batch: 1},
		},
	}); err != nil {
		return err
	}
	return seed(st, stations, bikesPerStation, riders)
}

func seed(st *core.Store, stations, bikesPerStation, riders int) error {
	ctx := &ee.ExecCtx{Undo: storage.NewUndoLog()}
	ex := st.EE()
	bikeID := int64(1)
	for s := 1; s <= stations; s++ {
		lat := 40.70 + 0.01*float64(s%10)
		lon := -74.02 + 0.01*float64(s/10)
		if _, err := ex.ExecSQL(ctx, "INSERT INTO stations VALUES (?, ?, ?, ?, ?, ?)",
			types.NewInt(int64(s)), types.NewString(fmt.Sprintf("station-%d", s)),
			types.NewFloat(lat), types.NewFloat(lon),
			types.NewInt(int64(bikesPerStation*2)), types.NewInt(int64(bikesPerStation))); err != nil {
			return err
		}
		for b := 0; b < bikesPerStation; b++ {
			if _, err := ex.ExecSQL(ctx, "INSERT INTO bikes VALUES (?, ?, NULL)",
				types.NewInt(bikeID), types.NewInt(int64(s))); err != nil {
				return err
			}
			bikeID++
		}
	}
	for r := 1; r <= riders; r++ {
		if _, err := ex.ExecSQL(ctx, "INSERT INTO riders (id, name) VALUES (?, ?)",
			types.NewInt(int64(r)), types.NewString(fmt.Sprintf("rider-%d", r))); err != nil {
			return err
		}
	}
	return nil
}

// checkoutProc: a member checks a bike out of a station (pure OLTP).
// Params: rider, station, ts. Returns the bike id (or aborts).
func checkoutProc() *pe.Procedure {
	return &pe.Procedure{
		Name:     "bs_checkout",
		ReadSet:  []string{"stations", "bikes", "rides"},
		WriteSet: []string{"stations", "bikes", "rides", "ride_stats"},
		Handler: func(ctx *pe.ProcCtx) error {
			rider, station, ts := ctx.Params[0], ctx.Params[1], ctx.Params[2]
			stn, err := ctx.QueryRow("SELECT bikes_avail FROM stations WHERE id = ?", station)
			if err != nil {
				return err
			}
			if stn == nil {
				return ctx.Abort("no such station")
			}
			if stn[0].Int() <= 0 {
				return ctx.Abort("no bikes available")
			}
			active, err := ctx.QueryRow(
				"SELECT id FROM rides WHERE rider = ? AND active = 1", rider)
			if err != nil {
				return err
			}
			if active != nil {
				return ctx.Abort("rider already has a bike")
			}
			bike, err := ctx.QueryRow(
				"SELECT id FROM bikes WHERE station = ? ORDER BY id LIMIT 1", station)
			if err != nil {
				return err
			}
			if bike == nil {
				return ctx.Abort("inventory inconsistent: no bike at station")
			}
			if _, err := ctx.Exec("UPDATE bikes SET station = NULL, rider = ? WHERE id = ?",
				rider, bike[0]); err != nil {
				return err
			}
			if _, err := ctx.Exec(
				"UPDATE stations SET bikes_avail = bikes_avail - 1 WHERE id = ?", station); err != nil {
				return err
			}
			rid, err := ctx.QueryRow("SELECT COUNT(*) FROM rides")
			if err != nil {
				return err
			}
			if _, err := ctx.Exec(
				"INSERT INTO rides VALUES (?, ?, ?, ?, NULL, ?, NULL, NULL, 1)",
				types.NewInt(rid[0].Int()+1), rider, bike[0], station, ts); err != nil {
				return err
			}
			// Fresh per-ride statistics for the bike.
			if _, err := ctx.Exec("DELETE FROM ride_stats WHERE bike = ?", bike[0]); err != nil {
				return err
			}
			if _, err := ctx.Exec(
				"INSERT INTO ride_stats (bike, last_ts) VALUES (?, NULL)", bike[0]); err != nil {
				return err
			}
			// The station may have just gone low: let the discount stage
			// reevaluate (OLTP feeding a streaming workflow).
			if err := ctx.Emit("station_events", types.Row{station, ts}); err != nil {
				return err
			}
			ctx.SetResult(&ee.Result{Columns: []string{"bike"}, Rows: []types.Row{{bike[0]}}})
			return nil
		},
	}
}

// returnProc: a member returns a bike; the ride is charged, an accepted
// discount at this station is applied atomically, and dock state updates.
// Params: rider, station, ts.
func returnProc() *pe.Procedure {
	return &pe.Procedure{
		Name:     "bs_return",
		ReadSet:  []string{"rides", "stations", "discounts"},
		WriteSet: []string{"rides", "stations", "bikes", "riders", "discounts", "ride_stats"},
		Handler: func(ctx *pe.ProcCtx) error {
			rider, station, ts := ctx.Params[0], ctx.Params[1], ctx.Params[2]
			ride, err := ctx.QueryRow(
				"SELECT id, bike, start_ts FROM rides WHERE rider = ? AND active = 1", rider)
			if err != nil {
				return err
			}
			if ride == nil {
				return ctx.Abort("no active ride")
			}
			stn, err := ctx.QueryRow("SELECT docks, bikes_avail FROM stations WHERE id = ?", station)
			if err != nil {
				return err
			}
			if stn == nil {
				return ctx.Abort("no such station")
			}
			if stn[1].Int() >= stn[0].Int() {
				return ctx.Abort("no free dock")
			}
			minutes := (ts.Int() - ride[2].Int()) / 60_000_000
			if minutes < 1 {
				minutes = 1
			}
			cost := minutes * CentsPerMinute
			// Apply an accepted, unexpired discount for this rider at this
			// station — the transactional guarantee the paper calls out.
			disc, err := ctx.QueryRow(`SELECT pct FROM discounts
				WHERE station = ? AND rider = ? AND state = 'accepted' AND expires >= ?`,
				station, rider, ts)
			if err != nil {
				return err
			}
			if disc != nil {
				cost = cost * (100 - disc[0].Int()) / 100
				if _, err := ctx.Exec(
					"DELETE FROM discounts WHERE station = ? AND rider = ?", station, rider); err != nil {
					return err
				}
			}
			if _, err := ctx.Exec(
				"UPDATE rides SET active = 0, end_station = ?, end_ts = ?, cost_cents = ? WHERE id = ?",
				station, ts, types.NewInt(cost), ride[0]); err != nil {
				return err
			}
			if _, err := ctx.Exec(
				"UPDATE bikes SET station = ?, rider = NULL WHERE id = ?", station, ride[1]); err != nil {
				return err
			}
			if _, err := ctx.Exec(
				"UPDATE stations SET bikes_avail = bikes_avail + 1 WHERE id = ?", station); err != nil {
				return err
			}
			if _, err := ctx.Exec(
				"UPDATE riders SET spent_cents = spent_cents + ? WHERE id = ?",
				types.NewInt(cost), rider); err != nil {
				return err
			}
			if err := ctx.Emit("station_events", types.Row{station, ts}); err != nil {
				return err
			}
			ctx.SetResult(&ee.Result{Columns: []string{"cost_cents"},
				Rows: []types.Row{{types.NewInt(cost)}}})
			return nil
		},
	}
}

// acceptDiscountProc: a rider claims the open offer at a station. Serial
// execution makes the check-and-claim atomic: of two racing accepts,
// exactly one wins. Params: rider, station, ts. Returns 1/0.
func acceptDiscountProc() *pe.Procedure {
	return &pe.Procedure{
		Name:     "bs_accept_discount",
		ReadSet:  []string{"discounts"},
		WriteSet: []string{"discounts"},
		Handler: func(ctx *pe.ProcCtx) error {
			rider, station, ts := ctx.Params[0], ctx.Params[1], ctx.Params[2]
			offer, err := ctx.QueryRow(
				"SELECT pct FROM discounts WHERE station = ? AND state = 'offered'", station)
			if err != nil {
				return err
			}
			ok := int64(0)
			if offer != nil {
				if _, err := ctx.Exec(`UPDATE discounts
					SET state = 'accepted', rider = ?, expires = ?
					WHERE station = ?`,
					rider, types.NewInt(ts.Int()+DiscountWindowUS), station); err != nil {
					return err
				}
				ok = 1
			}
			ctx.SetResult(&ee.Result{Columns: []string{"accepted"},
				Rows: []types.Row{{types.NewInt(ok)}}})
			return nil
		},
	}
}

// expireDiscountsProc: accepted offers whose 15-minute window passed
// reopen for other riders. Params: ts.
func expireDiscountsProc() *pe.Procedure {
	return &pe.Procedure{
		Name:     "bs_expire_discounts",
		WriteSet: []string{"discounts"},
		Handler: func(ctx *pe.ProcCtx) error {
			res, err := ctx.Exec(`UPDATE discounts
				SET state = 'offered', rider = NULL, expires = NULL
				WHERE state = 'accepted' AND expires < ?`, ctx.Params[0])
			if err != nil {
				return err
			}
			ctx.SetResult(&ee.Result{Columns: []string{"expired"},
				Rows: []types.Row{{types.NewInt(int64(res.RowsAffected))}}})
			return nil
		},
	}
}

// gpsProc is the streaming stage: per position report it updates the
// per-ride statistics (distance, max speed) in Go control code + SQL, and
// emits a stolen-bike alert when the implied speed exceeds 60 mph.
func gpsProc() *pe.Procedure {
	return &pe.Procedure{
		Name:     "bs_gps",
		ReadSet:  []string{"ride_stats"},
		WriteSet: []string{"ride_stats"},
		Handler: func(ctx *pe.ProcCtx) error {
			for _, p := range ctx.Batch {
				bike, ts := p[0], p[1]
				lat, lon := p[2].Float(), p[3].Float()
				st, err := ctx.QueryRow(
					"SELECT dist_m, max_speed, last_ts, last_lat, last_lon, points FROM ride_stats WHERE bike = ?", bike)
				if err != nil {
					return err
				}
				if st == nil {
					// Bike not on a checked-out ride: track it anyway
					// (company-side monitoring sees every bike).
					if _, err := ctx.Exec(
						"INSERT INTO ride_stats (bike, last_ts, last_lat, last_lon, points) VALUES (?, ?, ?, ?, 1)",
						bike, ts, p[2], p[3]); err != nil {
						return err
					}
					continue
				}
				if st[2].IsNull() {
					if _, err := ctx.Exec(
						"UPDATE ride_stats SET last_ts = ?, last_lat = ?, last_lon = ?, points = 1 WHERE bike = ?",
						ts, p[2], p[3], bike); err != nil {
						return err
					}
					continue
				}
				dtUS := ts.Int() - st[2].Int()
				if dtUS <= 0 {
					continue // out-of-order or duplicate report
				}
				dLat := (lat - st[3].Float()) * workload.MetersPerDegree
				dLon := (lon - st[4].Float()) * workload.MetersPerDegree
				dist := math.Sqrt(dLat*dLat + dLon*dLon)
				speed := dist / (float64(dtUS) / 1e6)
				maxSpeed := st[1].Float()
				if speed > maxSpeed {
					maxSpeed = speed
				}
				if _, err := ctx.Exec(`UPDATE ride_stats SET dist_m = ?, max_speed = ?,
					last_ts = ?, last_lat = ?, last_lon = ?, points = ? WHERE bike = ?`,
					types.NewFloat(st[0].Float()+dist), types.NewFloat(maxSpeed),
					ts, p[2], p[3], types.NewInt(st[5].Int()+1), bike); err != nil {
					return err
				}
				if speed > StolenSpeedMS {
					if err := ctx.Emit("alert_s",
						types.Row{bike, ts, types.NewFloat(speed)}); err != nil {
						return err
					}
				}
			}
			return nil
		},
	}
}

// alertProc records stolen-bike alerts (downstream workflow stage), at
// most one per bike per 30 simulated seconds to avoid alert storms.
func alertProc() *pe.Procedure {
	return &pe.Procedure{
		Name:     "bs_alert",
		ReadSet:  []string{"alerts"},
		WriteSet: []string{"alerts"},
		Handler: func(ctx *pe.ProcCtx) error {
			for _, a := range ctx.Batch {
				recent, err := ctx.QueryRow(
					"SELECT seq FROM alerts WHERE bike = ? AND ts > ? LIMIT 1",
					a[0], types.NewInt(a[1].Int()-30_000_000))
				if err != nil {
					return err
				}
				if recent != nil {
					continue
				}
				seq, err := ctx.QueryRow("SELECT COUNT(*) FROM alerts")
				if err != nil {
					return err
				}
				if _, err := ctx.Exec("INSERT INTO alerts VALUES (?, ?, ?, ?, 'stolen')",
					types.NewInt(seq[0].Int()+1), a[0], a[1], a[2]); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// offerProc reevaluates a station's discount after every checkout/return:
// low stations get an offer proportional to the shortage; recovered
// stations withdraw untaken offers.
func offerProc() *pe.Procedure {
	return &pe.Procedure{
		Name:     "bs_offer",
		ReadSet:  []string{"stations", "discounts"},
		WriteSet: []string{"discounts"},
		Handler: func(ctx *pe.ProcCtx) error {
			for _, ev := range ctx.Batch {
				station := ev[0]
				stn, err := ctx.QueryRow("SELECT bikes_avail, docks FROM stations WHERE id = ?", station)
				if err != nil {
					return err
				}
				if stn == nil {
					continue
				}
				avail := stn[0].Int()
				existing, err := ctx.QueryRow(
					"SELECT state FROM discounts WHERE station = ?", station)
				if err != nil {
					return err
				}
				switch {
				case avail <= LowWater && existing == nil:
					pct := int64(10)
					if avail == 0 {
						pct = 25
					}
					if _, err := ctx.Exec(
						"INSERT INTO discounts VALUES (?, NULL, ?, NULL, 'offered')",
						station, types.NewInt(pct)); err != nil {
						return err
					}
				case avail > LowWater && existing != nil && existing[0].Str() == "offered":
					if _, err := ctx.Exec(
						"DELETE FROM discounts WHERE station = ? AND state = 'offered'", station); err != nil {
						return err
					}
				}
			}
			return nil
		},
	}
}

// IngestGPS pushes a batch of generated GPS points into the engine.
func IngestGPS(st *core.Store, points []workload.GPSPoint) error {
	rows := make([]types.Row, len(points))
	for i, p := range points {
		rows[i] = types.Row{
			types.NewInt(p.Bike), types.NewInt(p.TS),
			types.NewFloat(p.Lat), types.NewFloat(p.Lon),
		}
	}
	return st.Ingest("gps", rows...)
}

// Invariants checks global consistency of the mixed workload: every bike
// is either docked or on exactly one active ride, station availability
// sums match, and at most one discount row exists per station.
func Invariants(st *core.Store) error {
	total, err := st.Query("SELECT COUNT(*) FROM bikes")
	if err != nil {
		return err
	}
	docked, err := st.Query("SELECT COUNT(*) FROM bikes WHERE station IS NOT NULL")
	if err != nil {
		return err
	}
	riding, err := st.Query("SELECT COUNT(*) FROM rides WHERE active = 1")
	if err != nil {
		return err
	}
	if docked.Rows[0][0].Int()+riding.Rows[0][0].Int() != total.Rows[0][0].Int() {
		return fmt.Errorf("bikeshare: bike conservation violated: %d docked + %d riding != %d bikes",
			docked.Rows[0][0].Int(), riding.Rows[0][0].Int(), total.Rows[0][0].Int())
	}
	availSum, err := st.Query("SELECT SUM(bikes_avail) FROM stations")
	if err != nil {
		return err
	}
	if !availSum.Rows[0][0].IsNull() && availSum.Rows[0][0].Int() != docked.Rows[0][0].Int() {
		return fmt.Errorf("bikeshare: station availability %d != docked bikes %d",
			availSum.Rows[0][0].Int(), docked.Rows[0][0].Int())
	}
	over, err := st.Query("SELECT COUNT(*) FROM stations WHERE bikes_avail < 0")
	if err != nil {
		return err
	}
	if over.Rows[0][0].Int() != 0 {
		return fmt.Errorf("bikeshare: negative availability at %d stations", over.Rows[0][0].Int())
	}
	return nil
}
