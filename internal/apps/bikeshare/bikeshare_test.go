package bikeshare

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/types"
	"repro/internal/workload"
)

func newStore(t testing.TB, stations, bikesPer, riders int) *core.Store {
	t.Helper()
	st := core.Open(core.Config{})
	if err := Setup(st, stations, bikesPer, riders); err != nil {
		t.Fatal(err)
	}
	if err := st.Start(); err != nil {
		t.Fatal(err)
	}
	return st
}

const baseTS = int64(1_700_000_000_000_000)

func TestCheckoutReturnLifecycle(t *testing.T) {
	st := newStore(t, 4, 3, 5)
	defer st.Stop()
	res, err := st.Call("bs_checkout", types.NewInt(1), types.NewInt(1), types.NewInt(baseTS))
	if err != nil {
		t.Fatal(err)
	}
	bike := res.Rows[0][0].Int()
	if bike == 0 {
		t.Fatal("no bike id returned")
	}
	// Double-checkout by the same rider aborts.
	if _, err := st.Call("bs_checkout", types.NewInt(1), types.NewInt(2), types.NewInt(baseTS)); err == nil {
		t.Fatal("double checkout accepted")
	}
	// Return after 10 minutes at another station: 10 * 15 cents.
	res, err = st.Call("bs_return", types.NewInt(1), types.NewInt(2),
		types.NewInt(baseTS+10*60*1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if cost := res.Rows[0][0].Int(); cost != 150 {
		t.Fatalf("cost = %d, want 150", cost)
	}
	// Bike is now docked at station 2.
	q, _ := st.Query("SELECT station FROM bikes WHERE id = ?", types.NewInt(bike))
	if q.Rows[0][0].Int() != 2 {
		t.Fatalf("bike at %v", q.Rows[0][0])
	}
	if err := Invariants(st); err != nil {
		t.Fatal(err)
	}
	// Returning again aborts.
	if _, err := st.Call("bs_return", types.NewInt(1), types.NewInt(2), types.NewInt(baseTS)); err == nil {
		t.Fatal("double return accepted")
	}
}

func TestCheckoutExhaustsStation(t *testing.T) {
	st := newStore(t, 2, 2, 5)
	defer st.Stop()
	for r := 1; r <= 2; r++ {
		if _, err := st.Call("bs_checkout", types.NewInt(int64(r)), types.NewInt(1), types.NewInt(baseTS)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Call("bs_checkout", types.NewInt(3), types.NewInt(1), types.NewInt(baseTS)); err == nil ||
		!strings.Contains(err.Error(), "no bikes") {
		t.Fatalf("err = %v", err)
	}
	if err := Invariants(st); err != nil {
		t.Fatal(err)
	}
}

func TestDiscountOfferedWhenLow(t *testing.T) {
	st := newStore(t, 2, 3, 5) // LowWater=2: after 1 checkout avail=2 -> offer
	defer st.Stop()
	if _, err := st.Call("bs_checkout", types.NewInt(1), types.NewInt(1), types.NewInt(baseTS)); err != nil {
		t.Fatal(err)
	}
	st.Drain() // let the station_events workflow run
	q, _ := st.Query("SELECT state, pct FROM discounts WHERE station = 1")
	if len(q.Rows) != 1 || q.Rows[0][0].Str() != "offered" {
		t.Fatalf("discounts: %v", q.Rows)
	}
	// Returning restores availability; the untaken offer is withdrawn.
	if _, err := st.Call("bs_return", types.NewInt(1), types.NewInt(1), types.NewInt(baseTS+60_000_000)); err != nil {
		t.Fatal(err)
	}
	st.Drain()
	q, _ = st.Query("SELECT COUNT(*) FROM discounts")
	if q.Rows[0][0].Int() != 0 {
		t.Fatalf("offer not withdrawn: %v", q.Rows)
	}
}

func TestDiscountAcceptanceIsExclusive(t *testing.T) {
	st := newStore(t, 1, 3, 10)
	defer st.Stop()
	if _, err := st.Call("bs_checkout", types.NewInt(1), types.NewInt(1), types.NewInt(baseTS)); err != nil {
		t.Fatal(err)
	}
	st.Drain()
	// 10 riders race to accept the single offer; exactly one must win.
	var wg sync.WaitGroup
	wins := make(chan int64, 10)
	for r := 1; r <= 10; r++ {
		wg.Add(1)
		go func(r int64) {
			defer wg.Done()
			res, err := st.Call("bs_accept_discount", types.NewInt(r), types.NewInt(1), types.NewInt(baseTS))
			if err == nil && res.Rows[0][0].Int() == 1 {
				wins <- r
			}
		}(int64(r))
	}
	wg.Wait()
	close(wins)
	var winners []int64
	for w := range wins {
		winners = append(winners, w)
	}
	if len(winners) != 1 {
		t.Fatalf("discount accepted by %d riders: %v", len(winners), winners)
	}
	q, _ := st.Query("SELECT rider, state FROM discounts WHERE station = 1")
	if q.Rows[0][1].Str() != "accepted" || q.Rows[0][0].Int() != winners[0] {
		t.Fatalf("discount row: %v (winner %d)", q.Rows, winners[0])
	}
}

func TestDiscountAppliedAndExpired(t *testing.T) {
	st := newStore(t, 2, 3, 5)
	defer st.Stop()
	// Drain station 1 low so an offer appears.
	if _, err := st.Call("bs_checkout", types.NewInt(1), types.NewInt(1), types.NewInt(baseTS)); err != nil {
		t.Fatal(err)
	}
	st.Drain()
	// Rider 1 accepts and returns at station 1 within the window: 25%
	// off? (avail=2 -> pct=10).
	if res, _ := st.Call("bs_accept_discount", types.NewInt(1), types.NewInt(1), types.NewInt(baseTS)); res.Rows[0][0].Int() != 1 {
		t.Fatal("accept failed")
	}
	res, err := st.Call("bs_return", types.NewInt(1), types.NewInt(1),
		types.NewInt(baseTS+10*60*1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if cost := res.Rows[0][0].Int(); cost != 135 { // 150 - 10%
		t.Fatalf("discounted cost = %d, want 135", cost)
	}
	// Discount is consumed.
	q, _ := st.Query("SELECT COUNT(*) FROM discounts WHERE rider = 1")
	if q.Rows[0][0].Int() != 0 {
		t.Fatal("used discount not removed")
	}

	// Expiry: rider 2 accepts a fresh offer but waits past 15 minutes.
	if _, err := st.Call("bs_checkout", types.NewInt(2), types.NewInt(1), types.NewInt(baseTS)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Call("bs_checkout", types.NewInt(3), types.NewInt(1), types.NewInt(baseTS)); err != nil {
		t.Fatal(err)
	}
	st.Drain()
	if res, _ := st.Call("bs_accept_discount", types.NewInt(2), types.NewInt(1), types.NewInt(baseTS)); res.Rows[0][0].Int() != 1 {
		t.Fatal("second accept failed")
	}
	late := baseTS + DiscountWindowUS + 1
	if res, _ := st.Call("bs_expire_discounts", types.NewInt(late)); res.Rows[0][0].Int() != 1 {
		t.Fatal("expiry did not reopen the offer")
	}
	q, _ = st.Query("SELECT state FROM discounts WHERE station = 1")
	if q.Rows[0][0].Str() != "offered" {
		t.Fatalf("state = %v", q.Rows)
	}
	// An expired discount no longer reduces the fare.
	res, err = st.Call("bs_return", types.NewInt(2), types.NewInt(1), types.NewInt(late))
	if err != nil {
		t.Fatal(err)
	}
	if cost := res.Rows[0][0].Int(); cost == 0 || cost%CentsPerMinute != 0 {
		t.Fatalf("expired discount applied? cost=%d", cost)
	}
}

func TestGPSStatsAndStolenAlerts(t *testing.T) {
	st := newStore(t, 2, 3, 5)
	defer st.Stop()
	cfg := workload.DefaultBikeConfig(11, 6, 40)
	cfg.StolenPct = 20 // make sure some bikes are stolen
	points := workload.GPS(cfg)
	if err := IngestGPS(st, points); err != nil {
		t.Fatal(err)
	}
	st.FlushBatches()
	st.Drain()
	// Stats exist for every reporting bike.
	q, _ := st.Query("SELECT COUNT(*) FROM ride_stats WHERE points > 1")
	if q.Rows[0][0].Int() != 6 {
		t.Fatalf("stats rows: %v", q.Rows)
	}
	// Distance accumulated and speeds plausible for normal bikes.
	q, _ = st.Query("SELECT COUNT(*) FROM ride_stats WHERE dist_m <= 0")
	if q.Rows[0][0].Int() != 0 {
		t.Fatal("bikes with zero distance")
	}
	// Alerts fired for stolen bikes only. The generator stole bikes with
	// rng; check alerts reference bikes whose max_speed > threshold.
	alerts, _ := st.Query("SELECT DISTINCT bike FROM alerts")
	if len(alerts.Rows) == 0 {
		t.Fatal("no stolen-bike alerts")
	}
	for _, r := range alerts.Rows {
		q, _ = st.Query("SELECT max_speed FROM ride_stats WHERE bike = ?", r[0])
		if q.Rows[0][0].Float() <= StolenSpeedMS {
			t.Fatalf("alert for slow bike %v (%.1f m/s)", r[0], q.Rows[0][0].Float())
		}
	}
	// The 10-second time window retains only recent points.
	q, _ = st.Query("SELECT COUNT(*) FROM w_recent")
	if n := q.Rows[0][0].Int(); n == 0 || n > 6*11 {
		t.Fatalf("w_recent holds %d points", n)
	}
}

func TestMixedWorkloadInvariants(t *testing.T) {
	// OLTP churn interleaved with GPS streaming: invariants hold at the
	// end (E4's correctness half).
	st := newStore(t, 5, 4, 12)
	defer st.Stop()
	cfg := workload.DefaultBikeConfig(13, 20, 30)
	points := workload.GPS(cfg)
	ts := baseTS
	pi := 0
	for round := 0; round < 30; round++ {
		ts += 60_000_000
		for r := 1; r <= 12; r++ {
			rider := types.NewInt(int64(r))
			stn := types.NewInt(int64(1 + (r+round)%5))
			if round%2 == 0 {
				_, _ = st.Call("bs_checkout", rider, stn, types.NewInt(ts))
			} else {
				_, _ = st.Call("bs_return", rider, stn, types.NewInt(ts))
			}
		}
		// interleave a slice of the GPS feed
		end := pi + 20
		if end > len(points) {
			end = len(points)
		}
		if pi < end {
			if err := IngestGPS(st, points[pi:end]); err != nil {
				t.Fatal(err)
			}
			pi = end
		}
		_, _ = st.Call("bs_expire_discounts", types.NewInt(ts))
	}
	st.FlushBatches()
	st.Drain()
	if err := Invariants(st); err != nil {
		t.Fatal(err)
	}
	// Some rides completed and were charged.
	q, _ := st.Query("SELECT COUNT(*) FROM rides WHERE active = 0 AND cost_cents > 0")
	if q.Rows[0][0].Int() == 0 {
		t.Fatal("no completed paid rides")
	}
}
