package types

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null.IsNull() || Null.Type() != TypeNull {
		t.Fatal("zero Value must be NULL")
	}
	if v := NewBool(true); !v.Bool() || v.Type() != TypeBool {
		t.Errorf("NewBool(true) = %v", v)
	}
	if v := NewInt(-42); v.Int() != -42 || v.Type() != TypeInt {
		t.Errorf("NewInt(-42) = %v", v)
	}
	if v := NewFloat(2.5); v.Float() != 2.5 || v.Type() != TypeFloat {
		t.Errorf("NewFloat(2.5) = %v", v)
	}
	if v := NewString("hi"); v.Str() != "hi" || v.Type() != TypeString {
		t.Errorf("NewString = %v", v)
	}
	if v := NewTimestamp(123); v.Timestamp() != 123 || v.Type() != TypeTimestamp {
		t.Errorf("NewTimestamp = %v", v)
	}
	if NewInt(7).Float() != 7.0 {
		t.Error("Int should widen to Float")
	}
}

func TestAccessorPanics(t *testing.T) {
	cases := []func(){
		func() { NewInt(1).Bool() },
		func() { NewBool(true).Int() },
		func() { NewString("x").Float() },
		func() { NewInt(1).Str() },
		func() { NewInt(1).Timestamp() },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestCompareCrossTypeNumeric(t *testing.T) {
	if NewInt(2).Compare(NewFloat(2.0)) != 0 {
		t.Error("2 should equal 2.0")
	}
	if NewInt(2).Compare(NewFloat(2.5)) != -1 {
		t.Error("2 < 2.5")
	}
	if NewFloat(3.5).Compare(NewInt(3)) != 1 {
		t.Error("3.5 > 3")
	}
	if Null.Compare(NewInt(math.MinInt64)) != -1 {
		t.Error("NULL sorts first")
	}
	if NewString("a").Compare(NewInt(1)) != 1 {
		t.Error("strings sort after numerics")
	}
}

func TestCompareIsTotalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]Value, 0, 200)
	for i := 0; i < 200; i++ {
		vals = append(vals, randomValue(rng))
	}
	for _, a := range vals {
		if a.Compare(a) != 0 {
			t.Fatalf("reflexivity violated for %v", a)
		}
		for _, b := range vals {
			if a.Compare(b) != -b.Compare(a) {
				t.Fatalf("antisymmetry violated for %v vs %v", a, b)
			}
			for _, c := range vals {
				if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
					t.Fatalf("transitivity violated: %v <= %v <= %v but %v > %v", a, b, c, a, c)
				}
			}
		}
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	if NewInt(2).Hash() != NewFloat(2.0).Hash() {
		t.Error("2 and 2.0 compare equal so must hash equal")
	}
	f := func(i int64) bool {
		return NewInt(i).Hash() == NewInt(i).Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Property: equal values hash equal for random pairs.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		a, b := randomValue(rng), randomValue(rng)
		if a.Equal(b) && a.Hash() != b.Hash() {
			t.Fatalf("%v == %v but hashes differ", a, b)
		}
	}
}

func TestNaNOrderingIsTotal(t *testing.T) {
	nan := NewFloat(math.NaN())
	if nan.Compare(nan) != 0 {
		t.Error("NaN must equal itself in the storage order")
	}
	if nan.Compare(NewFloat(0)) != -1 || NewFloat(0).Compare(nan) != 1 {
		t.Error("NaN must sort before numbers")
	}
	if nan.Compare(NewFloat(math.Inf(-1))) != -1 {
		t.Error("NaN must sort before -Inf")
	}
}

func TestCoerce(t *testing.T) {
	cases := []struct {
		in      Value
		to      Type
		want    Value
		wantErr bool
	}{
		{NewInt(3), TypeFloat, NewFloat(3), false},
		{NewFloat(3), TypeInt, NewInt(3), false},
		{NewFloat(3.5), TypeInt, Null, true},
		{NewString("42"), TypeInt, NewInt(42), false},
		{NewString("4.5"), TypeFloat, NewFloat(4.5), false},
		{NewString("x"), TypeInt, Null, true},
		{NewInt(1), TypeBool, NewBool(true), false},
		{NewString("true"), TypeBool, NewBool(true), false},
		{NewInt(9), TypeTimestamp, NewTimestamp(9), false},
		{NewTimestamp(9), TypeInt, NewInt(9), false},
		{NewInt(7), TypeString, NewString("7"), false},
		{Null, TypeInt, Null, false},
	}
	for _, c := range cases {
		got, err := Coerce(c.in, c.to)
		if c.wantErr {
			if err == nil {
				t.Errorf("Coerce(%v, %v): expected error, got %v", c.in, c.to, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("Coerce(%v, %v): %v", c.in, c.to, err)
			continue
		}
		if !got.Equal(c.want) || got.Type() != c.want.Type() {
			t.Errorf("Coerce(%v, %v) = %v, want %v", c.in, c.to, got, c.want)
		}
	}
}

func TestParseType(t *testing.T) {
	for name, want := range map[string]Type{
		"int": TypeInt, "INTEGER": TypeInt, "bigint": TypeInt,
		"float": TypeFloat, "DOUBLE": TypeFloat,
		"varchar": TypeString, "TEXT": TypeString,
		"timestamp": TypeTimestamp, "BOOLEAN": TypeBool,
	} {
		got, err := ParseType(name)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseType("blob"); err == nil {
		t.Error("ParseType(blob) should fail")
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"NULL": Null, "true": NewBool(true), "-7": NewInt(-7),
		"2.5": NewFloat(2.5), "abc": NewString("abc"), "10us": NewTimestamp(10),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if got := NewString("o'neil").SQLLiteral(); got != "'o''neil'" {
		t.Errorf("SQLLiteral = %q", got)
	}
}

// randomValue draws a value covering every type class, shared across tests.
func randomValue(rng *rand.Rand) Value {
	switch rng.Intn(7) {
	case 0:
		return Null
	case 1:
		return NewBool(rng.Intn(2) == 0)
	case 2:
		return NewInt(rng.Int63n(100) - 50)
	case 3:
		return NewFloat(float64(rng.Int63n(100)-50) / 2)
	case 4:
		return NewString(string(rune('a' + rng.Intn(26))))
	case 5:
		return NewTimestamp(rng.Int63n(1000))
	default:
		return NewFloat(math.NaN())
	}
}
