// Package types defines the SQL value system shared by every layer of the
// engine: typed scalar values, rows, schemas, and the comparison/hashing
// semantics that storage, execution, and the wire protocol all agree on.
package types

import (
	"fmt"
	"hash/maphash"
	"math"
	"strconv"
	"strings"
)

// Type identifies the SQL type of a Value.
type Type uint8

// The SQL types supported by the engine.
const (
	TypeNull Type = iota
	TypeBool
	TypeInt   // 64-bit signed integer (covers INT and BIGINT)
	TypeFloat // 64-bit IEEE float (DOUBLE)
	TypeString
	TypeTimestamp // microseconds since the Unix epoch, timezone-free
)

// String returns the SQL spelling of the type.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "NULL"
	case TypeBool:
		return "BOOLEAN"
	case TypeInt:
		return "BIGINT"
	case TypeFloat:
		return "FLOAT"
	case TypeString:
		return "VARCHAR"
	case TypeTimestamp:
		return "TIMESTAMP"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// ParseType maps a SQL type name to a Type. It accepts the usual synonyms
// (INT, INTEGER, BIGINT, DOUBLE, REAL, TEXT, ...).
func ParseType(name string) (Type, error) {
	switch strings.ToUpper(name) {
	case "BOOL", "BOOLEAN":
		return TypeBool, nil
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "TINYINT":
		return TypeInt, nil
	case "FLOAT", "DOUBLE", "REAL", "DECIMAL", "NUMERIC":
		return TypeFloat, nil
	case "VARCHAR", "TEXT", "STRING", "CHAR":
		return TypeString, nil
	case "TIMESTAMP", "DATETIME":
		return TypeTimestamp, nil
	default:
		return TypeNull, fmt.Errorf("types: unknown type name %q", name)
	}
}

// Value is a compact tagged union holding one SQL scalar. The zero Value is
// SQL NULL. Values are immutable; all methods are safe for concurrent use.
type Value struct {
	typ Type
	i   int64 // Bool (0/1), Int, Timestamp
	f   float64
	s   string
}

// Null is the SQL NULL value.
var Null = Value{}

// NewBool returns a BOOLEAN value.
func NewBool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{typ: TypeBool, i: i}
}

// NewInt returns a BIGINT value.
func NewInt(i int64) Value { return Value{typ: TypeInt, i: i} }

// NewFloat returns a FLOAT value.
func NewFloat(f float64) Value { return Value{typ: TypeFloat, f: f} }

// NewString returns a VARCHAR value.
func NewString(s string) Value { return Value{typ: TypeString, s: s} }

// NewTimestamp returns a TIMESTAMP value from microseconds since the epoch.
func NewTimestamp(usec int64) Value { return Value{typ: TypeTimestamp, i: usec} }

// Type reports the value's SQL type.
func (v Value) Type() Type { return v.typ }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.typ == TypeNull }

// Bool returns the boolean payload. It panics if the value is not a BOOLEAN.
func (v Value) Bool() bool {
	if v.typ != TypeBool {
		panic(fmt.Sprintf("types: Bool() on %s value", v.typ))
	}
	return v.i != 0
}

// Int returns the integer payload. It panics unless the value is a BIGINT
// or TIMESTAMP.
func (v Value) Int() int64 {
	if v.typ != TypeInt && v.typ != TypeTimestamp {
		panic(fmt.Sprintf("types: Int() on %s value", v.typ))
	}
	return v.i
}

// Float returns the float payload, widening BIGINT if necessary. It panics
// on non-numeric values.
func (v Value) Float() float64 {
	switch v.typ {
	case TypeFloat:
		return v.f
	case TypeInt, TypeTimestamp:
		return float64(v.i)
	default:
		panic(fmt.Sprintf("types: Float() on %s value", v.typ))
	}
}

// Str returns the string payload. It panics if the value is not a VARCHAR.
func (v Value) Str() string {
	if v.typ != TypeString {
		panic(fmt.Sprintf("types: Str() on %s value", v.typ))
	}
	return v.s
}

// Timestamp returns the timestamp payload in microseconds since the epoch.
func (v Value) Timestamp() int64 {
	if v.typ != TypeTimestamp {
		panic(fmt.Sprintf("types: Timestamp() on %s value", v.typ))
	}
	return v.i
}

// IsNumeric reports whether the value is BIGINT or FLOAT.
func (v Value) IsNumeric() bool { return v.typ == TypeInt || v.typ == TypeFloat }

// IsTrue reports whether the value is the boolean TRUE. NULL is not true.
func (v Value) IsTrue() bool { return v.typ == TypeBool && v.i != 0 }

// String renders the value as it would appear in query output.
func (v Value) String() string {
	switch v.typ {
	case TypeNull:
		return "NULL"
	case TypeBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case TypeInt:
		return strconv.FormatInt(v.i, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case TypeString:
		return v.s
	case TypeTimestamp:
		return strconv.FormatInt(v.i, 10) + "us"
	default:
		return fmt.Sprintf("Value(%d)", uint8(v.typ))
	}
}

// SQLLiteral renders the value as a SQL literal (strings quoted and escaped).
func (v Value) SQLLiteral() string {
	if v.typ == TypeString {
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	}
	return v.String()
}

// Compare defines the total order used by indexes and ORDER BY:
// NULL < BOOL < numerics < VARCHAR < TIMESTAMP, with BIGINT and FLOAT
// comparing by numeric value. It returns -1, 0, or +1.
func (v Value) Compare(o Value) int {
	vr, or := v.rank(), o.rank()
	if vr != or {
		if vr < or {
			return -1
		}
		return 1
	}
	switch v.typ {
	case TypeNull:
		return 0
	case TypeBool, TypeTimestamp:
		return cmpInt(v.i, o.i)
	case TypeInt:
		if o.typ == TypeFloat {
			return cmpFloat(float64(v.i), o.f)
		}
		return cmpInt(v.i, o.i)
	case TypeFloat:
		if o.typ == TypeInt {
			return cmpFloat(v.f, float64(o.i))
		}
		return cmpFloat(v.f, o.f)
	case TypeString:
		return strings.Compare(v.s, o.s)
	default:
		return 0
	}
}

// rank groups types into comparison classes; BIGINT and FLOAT share a class.
func (v Value) rank() int {
	switch v.typ {
	case TypeNull:
		return 0
	case TypeBool:
		return 1
	case TypeInt, TypeFloat:
		return 2
	case TypeString:
		return 3
	case TypeTimestamp:
		return 4
	default:
		return 5
	}
}

// Equal reports whether two values compare equal (NULL equals NULL here;
// SQL three-valued logic is applied by the expression evaluator, not by
// storage).
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case a == b:
		return 0
	// NaNs sort before everything else so the order stays total.
	case math.IsNaN(a) && math.IsNaN(b):
		return 0
	case math.IsNaN(a):
		return -1
	default:
		return 1
	}
}

var hashSeed = maphash.MakeSeed()

// Hash returns a hash consistent with Compare: values that compare equal
// hash equal (in particular BIGINT 2 and FLOAT 2.0).
func (v Value) Hash() uint64 {
	var h maphash.Hash
	h.SetSeed(hashSeed)
	switch v.typ {
	case TypeNull:
		h.WriteByte(0)
	case TypeBool:
		h.WriteByte(1)
		h.WriteByte(byte(v.i))
	case TypeInt, TypeFloat:
		// Hash the float64 representation so 2 and 2.0 collide.
		h.WriteByte(2)
		f := v.Float()
		if f == math.Trunc(f) && !math.IsInf(f, 0) && f >= -1e15 && f <= 1e15 {
			writeUint64(&h, uint64(int64(f)))
		} else {
			writeUint64(&h, math.Float64bits(f))
		}
	case TypeString:
		h.WriteByte(3)
		h.WriteString(v.s)
	case TypeTimestamp:
		h.WriteByte(4)
		writeUint64(&h, uint64(v.i))
	}
	return h.Sum64()
}

func writeUint64(h *maphash.Hash, u uint64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
	h.Write(b[:])
}

// Coerce converts v to the target type when a lossless or standard SQL
// conversion exists (int↔float, string→any via parsing, timestamp↔int).
func Coerce(v Value, t Type) (Value, error) {
	if v.typ == t || v.typ == TypeNull {
		return v, nil
	}
	switch t {
	case TypeBool:
		if v.typ == TypeString {
			switch strings.ToLower(v.s) {
			case "true", "t", "1":
				return NewBool(true), nil
			case "false", "f", "0":
				return NewBool(false), nil
			}
		}
		if v.typ == TypeInt {
			return NewBool(v.i != 0), nil
		}
	case TypeInt:
		switch v.typ {
		case TypeFloat:
			if v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) {
				return NewInt(int64(v.f)), nil
			}
		case TypeString:
			if i, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64); err == nil {
				return NewInt(i), nil
			}
		case TypeTimestamp:
			return NewInt(v.i), nil
		case TypeBool:
			return NewInt(v.i), nil
		}
	case TypeFloat:
		switch v.typ {
		case TypeInt:
			return NewFloat(float64(v.i)), nil
		case TypeString:
			if f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64); err == nil {
				return NewFloat(f), nil
			}
		}
	case TypeString:
		return NewString(v.String()), nil
	case TypeTimestamp:
		switch v.typ {
		case TypeInt:
			return NewTimestamp(v.i), nil
		case TypeString:
			if i, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64); err == nil {
				return NewTimestamp(i), nil
			}
		}
	}
	return Null, fmt.Errorf("types: cannot coerce %s %q to %s", v.typ, v.String(), t)
}
