package types

import (
	"fmt"
	"strings"
)

// Column describes one column of a table, stream, or window schema.
type Column struct {
	Name     string
	Type     Type
	NotNull  bool
	Default  Value // NULL when no default was declared
	HasDeflt bool
}

// Schema is an ordered list of columns plus the primary-key column set.
// Schemas are immutable after construction.
type Schema struct {
	cols    []Column
	byName  map[string]int
	pkCols  []int // ordinal positions of primary-key columns, in key order
	relName string
}

// NewSchema builds a schema. pk lists primary-key column names in key order;
// it may be empty for keyless relations (streams usually are keyless).
func NewSchema(relName string, cols []Column, pk []string) (*Schema, error) {
	s := &Schema{
		cols:    append([]Column(nil), cols...),
		byName:  make(map[string]int, len(cols)),
		relName: relName,
	}
	for i, c := range s.cols {
		name := strings.ToLower(c.Name)
		if name == "" {
			return nil, fmt.Errorf("types: schema %q column %d has empty name", relName, i)
		}
		if _, dup := s.byName[name]; dup {
			return nil, fmt.Errorf("types: schema %q has duplicate column %q", relName, c.Name)
		}
		s.byName[name] = i
	}
	for _, k := range pk {
		i, ok := s.byName[strings.ToLower(k)]
		if !ok {
			return nil, fmt.Errorf("types: schema %q primary key references unknown column %q", relName, k)
		}
		s.pkCols = append(s.pkCols, i)
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for statically known schemas.
func MustSchema(relName string, cols []Column, pk []string) *Schema {
	s, err := NewSchema(relName, cols, pk)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the relation name the schema was built for.
func (s *Schema) Name() string { return s.relName }

// NumColumns returns the column count.
func (s *Schema) NumColumns() int { return len(s.cols) }

// Column returns the i'th column.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// ColumnIndex resolves a (case-insensitive) column name to its ordinal, or
// -1 when absent.
func (s *Schema) ColumnIndex(name string) int {
	if i, ok := s.byName[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// PrimaryKey returns the ordinals of the primary-key columns (empty when
// the relation is keyless).
func (s *Schema) PrimaryKey() []int { return append([]int(nil), s.pkCols...) }

// HasPrimaryKey reports whether a primary key was declared.
func (s *Schema) HasPrimaryKey() bool { return len(s.pkCols) > 0 }

// Row is one tuple; len(Row) always equals the schema's column count.
type Row []Value

// Clone returns a deep copy of the row (Values are immutable, so a shallow
// copy of the slice suffices).
func (r Row) Clone() Row { return append(Row(nil), r...) }

// Key extracts the values at the given ordinals (used for index keys).
func (r Row) Key(ordinals []int) Row {
	k := make(Row, len(ordinals))
	for i, o := range ordinals {
		k[i] = r[o]
	}
	return k
}

// Equal reports element-wise equality of two rows.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !r[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Compare orders rows lexicographically element by element.
func (r Row) Compare(o Row) int {
	n := len(r)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if c := r[i].Compare(o[i]); c != 0 {
			return c
		}
	}
	return cmpInt(int64(len(r)), int64(len(o)))
}

// Hash combines the element hashes of the row.
func (r Row) Hash() uint64 {
	// FNV-1a style mixing over per-value hashes.
	h := uint64(14695981039346656037)
	for _, v := range r {
		h ^= v.Hash()
		h *= 1099511628211
	}
	return h
}

// String renders the row as a parenthesized tuple.
func (r Row) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range r {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// ValidateRow checks arity, NOT NULL constraints, and coerces each value to
// the declared column type, returning the (possibly converted) row.
func (s *Schema) ValidateRow(r Row) (Row, error) {
	if len(r) != len(s.cols) {
		return nil, fmt.Errorf("types: %s expects %d values, got %d", s.relName, len(s.cols), len(r))
	}
	out := r.Clone()
	for i, c := range s.cols {
		if out[i].IsNull() {
			if c.HasDeflt {
				out[i] = c.Default
			} else if c.NotNull {
				return nil, fmt.Errorf("types: %s.%s is NOT NULL", s.relName, c.Name)
			}
			continue
		}
		v, err := Coerce(out[i], c.Type)
		if err != nil {
			return nil, fmt.Errorf("types: %s.%s: %w", s.relName, c.Name, err)
		}
		out[i] = v
	}
	return out, nil
}
