package types

import (
	"strings"
	"testing"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("contestants",
		[]Column{
			{Name: "id", Type: TypeInt, NotNull: true},
			{Name: "name", Type: TypeString, NotNull: true},
			{Name: "votes", Type: TypeInt, Default: NewInt(0), HasDeflt: true},
		},
		[]string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaLookup(t *testing.T) {
	s := testSchema(t)
	if s.Name() != "contestants" || s.NumColumns() != 3 {
		t.Fatalf("bad schema basics: %s %d", s.Name(), s.NumColumns())
	}
	if s.ColumnIndex("NAME") != 1 || s.ColumnIndex("name") != 1 {
		t.Error("column lookup should be case-insensitive")
	}
	if s.ColumnIndex("absent") != -1 {
		t.Error("missing column should be -1")
	}
	if pk := s.PrimaryKey(); len(pk) != 1 || pk[0] != 0 {
		t.Errorf("pk = %v", pk)
	}
	if !s.HasPrimaryKey() {
		t.Error("HasPrimaryKey")
	}
}

func TestSchemaErrors(t *testing.T) {
	if _, err := NewSchema("t", []Column{{Name: "a", Type: TypeInt}, {Name: "A", Type: TypeInt}}, nil); err == nil {
		t.Error("duplicate column should fail")
	}
	if _, err := NewSchema("t", []Column{{Name: "", Type: TypeInt}}, nil); err == nil {
		t.Error("empty column name should fail")
	}
	if _, err := NewSchema("t", []Column{{Name: "a", Type: TypeInt}}, []string{"b"}); err == nil {
		t.Error("unknown pk column should fail")
	}
}

func TestValidateRow(t *testing.T) {
	s := testSchema(t)
	// Coercion: string id becomes int.
	r, err := s.ValidateRow(Row{NewString("5"), NewString("alice"), NewInt(3)})
	if err != nil {
		t.Fatal(err)
	}
	if r[0].Int() != 5 {
		t.Errorf("id not coerced: %v", r[0])
	}
	// Default applied on NULL.
	r, err = s.ValidateRow(Row{NewInt(1), NewString("bob"), Null})
	if err != nil {
		t.Fatal(err)
	}
	if r[2].Int() != 0 {
		t.Errorf("default not applied: %v", r[2])
	}
	// NOT NULL enforced.
	if _, err := s.ValidateRow(Row{Null, NewString("x"), Null}); err == nil {
		t.Error("null pk should fail")
	}
	// Arity enforced.
	if _, err := s.ValidateRow(Row{NewInt(1)}); err == nil {
		t.Error("short row should fail")
	}
	// Bad coercion reported with column name.
	_, err = s.ValidateRow(Row{NewString("xx"), NewString("x"), Null})
	if err == nil || !strings.Contains(err.Error(), "contestants.id") {
		t.Errorf("expected column-qualified error, got %v", err)
	}
}

func TestRowHelpers(t *testing.T) {
	r := Row{NewInt(1), NewString("a"), NewFloat(2)}
	c := r.Clone()
	c[0] = NewInt(9)
	if r[0].Int() != 1 {
		t.Error("Clone must not share backing storage effects")
	}
	if !r.Equal(Row{NewInt(1), NewString("a"), NewFloat(2)}) {
		t.Error("Equal")
	}
	if r.Equal(Row{NewInt(1)}) {
		t.Error("arity mismatch should not be equal")
	}
	if k := r.Key([]int{2, 0}); !k.Equal(Row{NewFloat(2), NewInt(1)}) {
		t.Errorf("Key = %v", k)
	}
	if r.Compare(Row{NewInt(1), NewString("a")}) != 1 {
		t.Error("longer row with equal prefix sorts after")
	}
	if r.Compare(Row{NewInt(0)}) != 1 || r.Compare(Row{NewInt(2)}) != -1 {
		t.Error("lexicographic compare broken")
	}
	if got := r.String(); got != "(1, a, 2)" {
		t.Errorf("String = %q", got)
	}
	if r.Hash() != r.Clone().Hash() {
		t.Error("row hash must be deterministic")
	}
}
