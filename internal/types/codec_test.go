package types

import (
	"math"
	"math/rand"
	"testing"
)

func TestValueCodecRoundTrip(t *testing.T) {
	vals := []Value{
		Null, NewBool(true), NewBool(false),
		NewInt(0), NewInt(-1), NewInt(math.MaxInt64), NewInt(math.MinInt64),
		NewFloat(0), NewFloat(-2.5), NewFloat(math.Inf(1)),
		NewString(""), NewString("hello"), NewString("O'Neil — naïve"),
		NewTimestamp(0), NewTimestamp(1 << 40),
	}
	for _, v := range vals {
		buf := EncodeValue(nil, v)
		got, rest, err := DecodeValue(buf)
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if len(rest) != 0 {
			t.Errorf("decode %v left %d bytes", v, len(rest))
		}
		if got.Type() != v.Type() || !got.Equal(v) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
	// NaN round-trips by bit pattern.
	got, _, err := DecodeValue(EncodeValue(nil, NewFloat(math.NaN())))
	if err != nil || !math.IsNaN(got.Float()) {
		t.Errorf("NaN round trip failed: %v %v", got, err)
	}
}

func TestRowCodecRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		r := make(Row, rng.Intn(8))
		for j := range r {
			r[j] = randomValue(rng)
		}
		got, rest, err := DecodeRow(EncodeRow(nil, r))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(rest) != 0 {
			t.Fatalf("leftover bytes")
		}
		if len(got) != len(r) {
			t.Fatalf("arity %d != %d", len(got), len(r))
		}
		for j := range r {
			// NaN compares equal under storage order.
			if r[j].Compare(got[j]) != 0 {
				t.Fatalf("row %v -> %v", r, got)
			}
		}
	}
}

func TestRowsCodec(t *testing.T) {
	rows := []Row{
		{NewInt(1), NewString("a")},
		{NewInt(2), NewString("b")},
		{},
	}
	got, rest, err := DecodeRows(EncodeRows(nil, rows))
	if err != nil || len(rest) != 0 {
		t.Fatalf("DecodeRows: %v rest=%d", err, len(rest))
	}
	if len(got) != 3 || !got[0].Equal(rows[0]) || !got[1].Equal(rows[1]) || len(got[2]) != 0 {
		t.Errorf("rows round trip mismatch: %v", got)
	}
}

func TestCodecCorruption(t *testing.T) {
	buf := EncodeRow(nil, Row{NewInt(5), NewString("abc")})
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeRow(buf[:cut]); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
	if _, _, err := DecodeValue([]byte{0xFF}); err == nil {
		t.Error("unknown tag not detected")
	}
	// Absurd arity must not allocate/loop.
	if _, _, err := DecodeRow([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x7F}); err == nil {
		t.Error("absurd arity not detected")
	}
}
