package types

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary encoding of values and rows, shared by the command log, snapshots,
// and the wire protocol. The format is length-prefixed and self-describing:
//
//	value  := typeByte payload
//	row    := uvarint(n) value*n
//
// Integers use zig-zag varints; strings are uvarint length + bytes.

// EncodeValue appends the binary encoding of v to buf and returns it.
func EncodeValue(buf []byte, v Value) []byte {
	buf = append(buf, byte(v.typ))
	switch v.typ {
	case TypeNull:
	case TypeBool:
		buf = append(buf, byte(v.i))
	case TypeInt, TypeTimestamp:
		buf = binary.AppendVarint(buf, v.i)
	case TypeFloat:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.f))
	case TypeString:
		buf = binary.AppendUvarint(buf, uint64(len(v.s)))
		buf = append(buf, v.s...)
	}
	return buf
}

// DecodeValue decodes one value from buf, returning it and the remaining
// bytes.
func DecodeValue(buf []byte) (Value, []byte, error) {
	if len(buf) == 0 {
		return Null, nil, io.ErrUnexpectedEOF
	}
	t := Type(buf[0])
	buf = buf[1:]
	switch t {
	case TypeNull:
		return Null, buf, nil
	case TypeBool:
		if len(buf) < 1 {
			return Null, nil, io.ErrUnexpectedEOF
		}
		return NewBool(buf[0] != 0), buf[1:], nil
	case TypeInt, TypeTimestamp:
		i, n := binary.Varint(buf)
		if n <= 0 {
			return Null, nil, io.ErrUnexpectedEOF
		}
		if t == TypeInt {
			return NewInt(i), buf[n:], nil
		}
		return NewTimestamp(i), buf[n:], nil
	case TypeFloat:
		if len(buf) < 8 {
			return Null, nil, io.ErrUnexpectedEOF
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(buf))
		return NewFloat(f), buf[8:], nil
	case TypeString:
		l, n := binary.Uvarint(buf)
		if n <= 0 || uint64(len(buf)-n) < l {
			return Null, nil, io.ErrUnexpectedEOF
		}
		return NewString(string(buf[n : n+int(l)])), buf[n+int(l):], nil
	default:
		return Null, nil, fmt.Errorf("types: corrupt value encoding: unknown tag %d", t)
	}
}

// EncodeRow appends the binary encoding of r to buf and returns it.
func EncodeRow(buf []byte, r Row) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(r)))
	for _, v := range r {
		buf = EncodeValue(buf, v)
	}
	return buf
}

// DecodeRow decodes one row from buf, returning it and the remaining bytes.
func DecodeRow(buf []byte) (Row, []byte, error) {
	n, c := binary.Uvarint(buf)
	if c <= 0 {
		return nil, nil, io.ErrUnexpectedEOF
	}
	if n > uint64(len(buf)) { // cheap corruption guard before allocating
		return nil, nil, fmt.Errorf("types: corrupt row encoding: arity %d exceeds buffer", n)
	}
	buf = buf[c:]
	r := make(Row, n)
	var err error
	for i := range r {
		r[i], buf, err = DecodeValue(buf)
		if err != nil {
			return nil, nil, err
		}
	}
	return r, buf, nil
}

// EncodeRows appends a uvarint count followed by each row.
func EncodeRows(buf []byte, rows []Row) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(rows)))
	for _, r := range rows {
		buf = EncodeRow(buf, r)
	}
	return buf
}

// DecodeRows decodes a row batch written by EncodeRows.
func DecodeRows(buf []byte) ([]Row, []byte, error) {
	n, c := binary.Uvarint(buf)
	if c <= 0 {
		return nil, nil, io.ErrUnexpectedEOF
	}
	if n > uint64(len(buf)) {
		return nil, nil, fmt.Errorf("types: corrupt batch encoding: count %d exceeds buffer", n)
	}
	buf = buf[c:]
	rows := make([]Row, n)
	var err error
	for i := range rows {
		rows[i], buf, err = DecodeRow(buf)
		if err != nil {
			return nil, nil, err
		}
	}
	return rows, buf, nil
}
