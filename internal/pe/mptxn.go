package pe

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/ee"
	"repro/internal/storage"
	"repro/internal/types"
)

// This file is one partition's side of a two-phase-commit transaction: the
// prepare/commit/abort barrier the cross-partition coordinator
// (internal/core) drives. The partition worker parks on the session from
// enlistment until the decision, so the leg occupies the partition's serial
// slot exactly like any local transaction — no other execution can observe
// or interleave with its uncommitted writes. The paper's per-partition
// serializability is preserved: a multi-partition transaction is one entry
// in every participant's serial history.
//
// Durability follows presumed-abort 2PC, pipelined: the worker never
// writes the log. Prepare is a rendezvous that hands the leg's
// re-executable write ops back to the coordinator, which appends the
// PREPARE record (and later the DECIDE marker) itself and waits for the
// fsyncs only after this worker is released — the coordinator gates the
// client acknowledgement on that durability chain, not the worker. The
// worker is freed the moment the commit is delivered to memory. Abort
// writes nothing: recovery treats a PREPARE with no commit decision as
// aborted.

// LoggedOp is one re-executable write of a prepared leg, in one of two
// forms: an ad-hoc SQL statement with its parameters, or a raw row batch
// into a relation (the router's coordinated INSERT legs). Replay executes
// the ops in order to reconstruct a committed leg.
type LoggedOp struct {
	SQL    string // statement form (empty for the row-batch form)
	Params []types.Value
	Table  string // row-batch form: target relation
	Rows   []types.Row
}

// mpReply carries one fragment's result back to the coordinator.
type mpReply struct {
	res *ee.Result
	err error
}

// mpFrag is one unit of work the coordinator sends to the parked worker.
type mpFrag struct {
	fn    func(ectx *ee.ExecCtx) (*ee.Result, error)
	op    *LoggedOp // non-nil: append to the PREPARE record on success
	write bool      // a write fragment disqualifies the read-only release
	reply chan mpReply
}

// prepReply is one partition's PREPARE vote. A readOnly vote means the leg
// wrote nothing and its worker was released at PREPARE — the coordinator
// must not deliver a decision to it.
type prepReply struct {
	err      error
	readOnly bool
	// ops is the leg's logged write set, handed to the coordinator so it
	// can append (and force) the PREPARE record off the partition worker.
	ops []LoggedOp
}

// MPSession is one partition's enlistment in a coordinated transaction.
// All methods are called by the coordinator goroutine, strictly in the
// order fragments → Prepare → Finish (Finish may come at any point after
// enlistment on the abort path). The worker executes everything; the
// session only carries the rendezvous channels.
type MPSession struct {
	e      *Engine
	txnID  uint64
	logged bool

	frags  chan mpFrag
	prep   chan chan prepReply
	decide chan bool
	// published is closed once the delivered decision is reflected in
	// memory (commit sequence published / rollback applied) — the point
	// the coordinator's publication lock must cover; durability acks
	// resolve later through done.
	published chan struct{}
	done      chan CallResult

	prepared bool
	finished bool
	// releasedPrep is set by Prepare when the worker took the read-only
	// release: the leg is done, Deliver must not rendezvous with it.
	releasedPrep bool
	// ops is the leg's logged write set as returned by the PREPARE vote;
	// the coordinator appends it as the leg's PREPARE record.
	ops []LoggedOp
}

// EnlistMP queues this partition's participation in coordinated transaction
// txnID. The worker parks on the session when it reaches the request and
// serves fragments until the decision. With logged set, write fragments are
// recorded and forced to the command log at Prepare; unlogged sessions (ad-
// hoc coordinated writes, which are never command-logged — matching
// single-partition Exec) skip the log entirely and are atomic in memory
// only.
func (e *Engine) EnlistMP(txnID uint64, logged bool) (*MPSession, error) {
	if err := e.errNotStarted(); err != nil {
		return nil, err
	}
	s := &MPSession{
		e:      e,
		txnID:  txnID,
		logged: logged,
		// frags is buffered one deep so the first fragment rides along
		// with the enlistment: the coordinator queues it before the worker
		// even reaches the request, and a woken worker executes
		// enlist + first fragment in one pickup instead of parking on an
		// empty session and waiting for a second rendezvous.
		frags:     make(chan mpFrag, 1),
		prep:      make(chan chan prepReply),
		decide:    make(chan bool),
		published: make(chan struct{}),
		done:      make(chan CallResult, 1),
	}
	r := &txnRequest{kind: reqMP, mp: s, done: s.done, enqueued: time.Now()}
	if !e.sched.push(r) {
		return nil, fmt.Errorf("pe: engine stopped")
	}
	return s, nil
}

// run sends one fragment to the parked worker and waits for its result.
func (s *MPSession) run(f mpFrag) (*Result, error) {
	f.reply = make(chan mpReply, 1)
	s.frags <- f
	rep := <-f.reply
	if rep.err != nil {
		return nil, rep.err
	}
	out := &Result{}
	if rep.res != nil {
		out.Columns = rep.res.Columns
		out.Rows = rep.res.Rows
		out.RowsAffected = rep.res.RowsAffected
	}
	return out, nil
}

// Exec runs one SQL statement inside the leg's transaction context. On a
// logged session the statement (with its concrete parameters) becomes part
// of the PREPARE record, so it must be a write whose re-execution is
// deterministic — which concrete-parameter DML is.
func (s *MPSession) Exec(sqlText string, params ...types.Value) (*Result, error) {
	var op *LoggedOp
	if s.logged {
		op = &LoggedOp{SQL: sqlText, Params: params}
	}
	return s.run(mpFrag{
		fn: func(ectx *ee.ExecCtx) (*ee.Result, error) {
			return s.e.ee.ExecSQL(ectx, sqlText, params...)
		},
		op:    op,
		write: true,
	})
}

// Query runs a read inside the leg's transaction context (it sees the
// leg's own uncommitted writes). Reads are never logged.
func (s *MPSession) Query(sqlText string, params ...types.Value) (*Result, error) {
	return s.run(mpFrag{
		fn: func(ectx *ee.ExecCtx) (*ee.Result, error) {
			return s.e.ee.ExecSQL(ectx, sqlText, params...)
		},
	})
}

// InsertRows inserts a pre-evaluated row batch into a relation inside the
// leg — the router's coordinated INSERT form, which avoids re-serializing
// values (timestamps have no SQL literal) and reuses the engine's
// default/NOT NULL/coercion checks.
func (s *MPSession) InsertRows(table string, rows []types.Row) (*Result, error) {
	var op *LoggedOp
	if s.logged {
		op = &LoggedOp{Table: table, Rows: rows}
	}
	return s.run(mpFrag{
		fn: func(ectx *ee.ExecCtx) (*ee.Result, error) {
			n, err := s.e.ee.InsertRows(ectx, table, rows)
			if err != nil {
				return nil, err
			}
			return &ee.Result{RowsAffected: n}, nil
		},
		op:    op,
		write: true,
	})
}

// Prepare ends the fragment phase and returns this partition's vote. A
// nil vote means the leg is ready to commit; its logged write set is then
// available through LoggedOps for the coordinator to append as the leg's
// PREPARE record (the worker does not log it — appending and forcing the
// vote is coordinator work, off the partition's serial slot). A non-nil
// vote obliges the coordinator to abort. A leg that wrote nothing takes
// the read-only 2PC optimization: it votes yes with no ops and its worker
// is released immediately — no PREPARE record, no DECIDE, and Deliver
// becomes a no-op for it. Writing legs keep their worker parked, waiting
// for Finish.
func (s *MPSession) Prepare() error {
	if s.prepared || s.finished {
		return fmt.Errorf("pe: mp session already prepared")
	}
	s.prepared = true
	ch := make(chan prepReply, 1)
	s.prep <- ch
	rep := <-ch
	if rep.readOnly {
		s.releasedPrep = true
	}
	s.ops = rep.ops
	return rep.err
}

// LoggedOps returns the leg's logged write set — valid after a successful
// Prepare. Nil for read-only, unlogged, or not-yet-prepared sessions. The
// coordinator appends these as the leg's PREPARE record before delivering
// the commit decision.
func (s *MPSession) LoggedOps() []LoggedOp { return s.ops }

// Finish delivers the coordinator's decision and waits for the leg's
// worker to wind down: on commit, after the effects publish (durability is
// the coordinator's to settle afterwards); on abort, after the undo log is
// rolled back. Finish is valid at any time after enlistment — aborting
// mid-fragment-phase is the error path. It is Deliver followed by Resolve;
// the coordinator calls the halves separately so its publication lock
// covers only the in-memory window.
func (s *MPSession) Finish(commit bool) error {
	if err := s.Deliver(commit); err != nil {
		return err
	}
	return s.Resolve()
}

// Deliver sends the decision to the parked worker and returns once the
// leg's in-memory state reflects it — the commit sequence published (or
// the rollback applied). Durability has not necessarily happened yet;
// Resolve waits for that. A leg released at PREPARE (read-only
// optimization) has no parked worker anymore: Deliver is a no-op for it.
func (s *MPSession) Deliver(commit bool) error {
	if s.finished {
		return fmt.Errorf("pe: mp session already finished")
	}
	s.finished = true
	if s.releasedPrep {
		return nil
	}
	s.decide <- commit
	<-s.published
	return nil
}

// Resolve waits for the worker's completion acknowledgement — sent as the
// worker unparks, right after the delivered decision is reflected in
// memory. It carries execution errors only; durability is settled by the
// coordinator after the slots release.
func (s *MPSession) Resolve() error {
	cr := <-s.done
	return cr.Err
}

// ReleasedAtPrepare reports whether this leg took the read-only release:
// it wrote nothing, voted yes, and freed its worker at PREPARE. Meaningful
// after Prepare returned.
func (s *MPSession) ReleasedAtPrepare() bool { return s.releasedPrep }

// executeMP is the worker side of the barrier: it parks on the session,
// serving fragments in its own serial slot, then resolves the decision.
// Runs on the partition goroutine.
func (e *Engine) executeMP(r *txnRequest) {
	s := r.mp
	start := time.Now()
	undo := undoPool.Get().(*storage.UndoLog)
	defer func() {
		undo.Release()
		undoPool.Put(undo)
	}()
	var emits []emission
	ectx := &ee.ExecCtx{
		Undo:              undo,
		DisableEETriggers: e.cfg.HStoreMode,
	}
	// Only logged (application-level) transactions drive workflows: they
	// are procedure-like, and their replay re-derives the triggered work.
	// Unlogged ad-hoc legs match single-partition ad-hoc Exec, which never
	// fires PE triggers — the same statement must not behave differently
	// just because its tuples happened to span partitions.
	if s.logged {
		ectx.OnStreamInsert = emissionCollector(&emits)
	}
	var ops []LoggedOp
	wrote := false
	for {
		select {
		case f := <-s.frags:
			res, err := f.fn(ectx)
			if err == nil && f.op != nil {
				ops = append(ops, *f.op)
			}
			if f.write {
				// Even a failed write disqualifies the read-only release:
				// it may have left undo entries the abort path must roll
				// back on this worker.
				wrote = true
			}
			f.reply <- mpReply{res: res, err: err}
		case reply := <-s.prep:
			if !wrote {
				// Read-only 2PC optimization: the leg has nothing to
				// force and nothing to roll back — vote yes, skip the
				// PREPARE force and the DECIDE marker entirely, and free
				// the partition's serial slot one full phase early.
				reply <- prepReply{readOnly: true}
				e.met.MPReadOnlyLegs.Add(1)
				e.met.ObserveLatency(time.Since(start))
				r.respond(nil, nil)
				return
			}
			// The vote hands the leg's logged ops to the coordinator, which
			// appends the PREPARE record itself (the worker stays parked
			// until the decision, so nothing else can slip a record into
			// this partition's log ahead of it). Durability of the vote is
			// the coordinator's to wait for — off this worker, off the
			// partition's serial slot.
			reply <- prepReply{ops: ops}
		case commit := <-s.decide:
			if !commit {
				undo.Rollback()
				close(s.published) // nothing published; unblock Deliver
				e.met.TxnAborted.Add(1)
				r.respond(nil, nil)
				return
			}
			// The coordinator delivers commit only after every leg's
			// PREPARE record is appended (though not necessarily durable
			// yet — the coordinator waits for the forces after this worker
			// is freed, and gates the client ack on them). The leg's
			// effects publish and the worker frees immediately; the DECIDE
			// marker is likewise the coordinator's to append once the
			// decision itself is durable.
			undo.Release()
			e.commitPublish()
			close(s.published) // in-memory commit visible; acks may lag
			e.met.TxnCommitted.Add(1)
			e.met.MPLegsCommitted.Add(1)
			e.dispatchEmits(emits, 0, r.origin, r.replay)
			e.met.ObserveLatency(time.Since(start))
			r.respond(nil, nil)
			return
		}
	}
}

// replayPreparedLeg re-executes a committed leg's ops during recovery.
// The transaction committed before the crash, so the ops must re-apply
// cleanly; an error here fails recovery loudly rather than diverging.
// Stream emissions re-derive their triggered descendants exactly like the
// live commit path (dispatchEmits) and the other replay kinds.
func (e *Engine) replayPreparedLeg(rec *LogRecord) error {
	// A slot-move leg is the complete authoritative content of its slot at
	// cutover time: evict whatever this partition's own earlier records
	// re-created for the slot before the images apply (the leg may even be
	// empty — every row of the slot died while it lived elsewhere).
	if slot, ok := e.replaySlotMoves[rec.MPTxnID]; ok && e.slotEvict != nil {
		if err := e.slotEvict(slot); err != nil {
			return fmt.Errorf("pe: replay of slot-move leg %d (slot %d): %w", rec.MPTxnID, slot, err)
		}
	}
	undo := storage.NewUndoLog()
	var emits []emission
	ectx := &ee.ExecCtx{
		Undo:              undo,
		DisableEETriggers: e.cfg.HStoreMode,
		OnStreamInsert:    emissionCollector(&emits),
	}
	for _, op := range rec.Ops {
		var err error
		if op.Table != "" {
			_, err = e.ee.InsertRows(ectx, op.Table, op.Rows)
		} else {
			_, err = e.ee.ExecSQL(ectx, op.SQL, op.Params...)
		}
		if err != nil {
			undo.Rollback()
			return fmt.Errorf("pe: replay of prepared mp leg %d: %w", rec.MPTxnID, err)
		}
	}
	undo.Release()
	e.commitPublish()
	e.replaying = true
	e.dispatchEmits(emits, 0, time.Time{}, true)
	return e.drainReplayDerived()
}

// emissionCollector returns the OnStreamInsert hook that merges a
// transaction's stream emissions per stream — shared by the local commit,
// multi-partition commit, and prepared-leg replay paths.
func emissionCollector(emits *[]emission) func(string, []storage.RowID, []types.Row) {
	return func(stream string, ids []storage.RowID, rows []types.Row) {
		es := *emits
		for i := range es {
			if es[i].stream == stream {
				es[i].ids = append(es[i].ids, ids...)
				es[i].rows = append(es[i].rows, rows...)
				return
			}
		}
		*emits = append(es, emission{stream: stream, ids: ids, rows: rows})
	}
}

// dispatchEmits turns a committed execution's stream emissions into
// downstream transaction executions (PE triggers) — shared by the local
// and multi-partition commit paths. origin is the chain root's admission
// time, inherited by descendants for end-to-end latency accounting.
// Emissions into a paused graph's streams defer until ResumeGraph (the
// pause gate for interior edges and OLTP-entry emissions). The returned
// count is the descendants this execution's chain continues into —
// zero means the chain ends here.
func (e *Engine) dispatchEmits(emits []emission, batchID uint64, origin time.Time, replay bool) int {
	continued := 0
	for _, em := range emits {
		e.ingestMu.Lock()
		b := e.bindings[strings.ToLower(em.stream)]
		paused := b != nil && !e.replaying && e.pausedGraphs[b.graph]
		if b == nil {
			e.ingestMu.Unlock()
			continue
		}
		tr := &txnRequest{
			kind:        reqTriggered,
			proc:        b.proc,
			batch:       em.rows,
			batchID:     batchID,
			inputStream: em.stream,
			gcIDs:       em.ids,
			enqueued:    time.Now(),
			origin:      origin,
			stats:       b.stats,
			graph:       b.graph,
			replay:      replay,
		}
		if paused {
			e.pausedTriggered[b.graph] = append(e.pausedTriggered[b.graph], tr)
			e.ingestMu.Unlock()
			continued++
			continue
		}
		e.ingestMu.Unlock()
		continued++
		switch {
		case e.replaying:
			e.replayQueue = append(e.replayQueue, tr)
		case e.cfg.Mode == ModeWorkflowSerial:
			if tr.graph != "" {
				tr.tracked = true
				e.graphTakeoff(tr.graph)
			}
			e.localTriggered = append(e.localTriggered, tr)
		default:
			e.pushTracked(tr)
		}
	}
	return continued
}
