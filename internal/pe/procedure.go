// Package pe implements the partition engine: the upper layer of the
// two-layer architecture (Fig. 1). It receives client requests (stored
// procedure invocations and stream ingests), schedules transaction
// executions serially on a single partition goroutine, fires PE triggers at
// commit to drive workflow stages without client round trips, and enforces
// the paper's stream-oriented ordering guarantees (natural order, workflow
// order, serial execution over shared writable tables).
package pe

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ee"
	"repro/internal/types"
)

// Procedure is a stored procedure: parameterized control code wrapping
// pre-plannable SQL, exactly like H-Store's Java procedures but in Go.
type Procedure struct {
	// Name identifies the procedure in calls, triggers, and the log.
	Name string
	// Handler is the control code. It runs inside a transaction execution:
	// all SQL it issues through ProcCtx is atomic, and its stream emissions
	// become downstream batches only if it commits.
	Handler func(ctx *ProcCtx) error
	// ReadSet / WriteSet declare the tables the procedure touches. The
	// engine uses the declarations to detect shared writable tables along a
	// workflow, which the paper says forces serial execution of the
	// involved procedures.
	ReadSet  []string
	WriteSet []string
	// PartitionParam is the 1-based index of the invocation parameter whose
	// hash selects the owning partition in a multi-partition store (the
	// H-Store "partitioning parameter"). 0 means the procedure is
	// unpartitioned: direct calls run on partition 0 only — such procedures
	// must not write tables the deployment treats as replicated reference
	// data, or partition 0's replica silently diverges (seed replicated
	// data before Start, or broadcast through ad-hoc Exec).
	PartitionParam int
}

// SharedWritableTables reports the tables written by one of procs and
// read or written by another — the paper's forced-serial constraint over
// a workflow's procedures. Lowercased and sorted for deterministic
// reports. Shared by Start-time workflow validation and deploy-time graph
// validation.
func SharedWritableTables(procs []*Procedure) []string {
	writes := map[string]string{} // table key -> writer proc
	for _, p := range procs {
		for _, t := range p.WriteSet {
			writes[strings.ToLower(t)] = p.Name
		}
	}
	shared := map[string]bool{}
	for _, p := range procs {
		for _, t := range append(append([]string{}, p.ReadSet...), p.WriteSet...) {
			if w, ok := writes[strings.ToLower(t)]; ok && w != p.Name {
				shared[strings.ToLower(t)] = true
			}
		}
	}
	out := make([]string, 0, len(shared))
	for t := range shared {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// ProcCtx is the interface the control code sees: its input (batch or
// parameters), and SQL/stream access routed through the execution engine
// under the transaction's undo log.
type ProcCtx struct {
	pe   *Engine
	ectx *ee.ExecCtx

	// Proc is the procedure being executed.
	Proc *Procedure
	// Batch is the input batch for workflow-triggered executions (border
	// procedures receive client tuples, interior ones the upstream output).
	// Nil for direct OLTP calls.
	Batch []types.Row
	// BatchID identifies the border batch this execution belongs to. It is
	// assigned at ingest and flows unchanged through the workflow.
	BatchID uint64
	// Params are the arguments of a direct OLTP invocation.
	Params []types.Value
	// TxnID is the transaction execution's unique id (assignment order =
	// admission order).
	TxnID uint64

	// out is the result returned to a Call client (see SetResult).
	out *ee.Result
}

// SetResult sets the rows returned to the client of a direct Call. The
// last SetResult before the handler returns wins.
func (c *ProcCtx) SetResult(res *ee.Result) { c.out = res }

// Exec runs a SQL statement inside the transaction execution. Statements
// are prepared once per procedure and cached (the H-Store model). The
// pseudo-relation "batch" exposes the input batch to SQL.
func (c *ProcCtx) Exec(sqlText string, params ...types.Value) (*ee.Result, error) {
	p, err := c.pe.prepareForProc(c.Proc, sqlText)
	if err != nil {
		return nil, err
	}
	return c.pe.ee.Execute(c.ectx, p, params...)
}

// Query is Exec for reads; provided for call-site clarity.
func (c *ProcCtx) Query(sqlText string, params ...types.Value) (*ee.Result, error) {
	return c.Exec(sqlText, params...)
}

// QueryRow runs a query expected to return at most one row; it returns nil
// when no row matches.
func (c *ProcCtx) QueryRow(sqlText string, params ...types.Value) (types.Row, error) {
	res, err := c.Exec(sqlText, params...)
	if err != nil {
		return nil, err
	}
	if len(res.Rows) == 0 {
		return nil, nil
	}
	return res.Rows[0], nil
}

// Emit appends rows to a stream. If a downstream procedure is bound to the
// stream, the rows become its input batch when this execution commits
// (PE trigger). Emissions are undone on abort like any other write.
func (c *ProcCtx) Emit(stream string, rows ...types.Row) error {
	if len(rows) == 0 {
		return nil
	}
	_, err := c.pe.ee.InsertRows(c.ectx, stream, rows)
	return err
}

// Abort lets control code abort the transaction execution with a reason;
// returning the error from the handler has the same effect.
func (c *ProcCtx) Abort(reason string) error {
	return fmt.Errorf("pe: aborted by procedure %s: %s", c.Proc.Name, reason)
}
