package pe

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/ee"
	"repro/internal/metrics"
	"repro/internal/types"
)

func newTestPE(t testing.TB, cfg Config, ddl string) *Engine {
	t.Helper()
	ex := ee.New(catalog.New(), &metrics.Metrics{})
	if err := ex.ExecScript(ddl); err != nil {
		t.Fatal(err)
	}
	return New(ex, cfg)
}

func intRow(vals ...int64) types.Row {
	r := make(types.Row, len(vals))
	for i, v := range vals {
		r[i] = types.NewInt(v)
	}
	return r
}

const counterDDL = `
	CREATE TABLE counter (id INT PRIMARY KEY, n BIGINT DEFAULT 0);
	CREATE STREAM in_s (v BIGINT);
	CREATE STREAM mid_s (v BIGINT);
	CREATE TABLE log_t (stage VARCHAR, v BIGINT, seq BIGINT);
`

// registerChain wires in_s -> sp_a -> mid_s -> sp_b, where each stage
// appends (stage, value, seq) to log_t using a shared sequence counter.
func registerChain(t testing.TB, e *Engine, batchSize int) {
	t.Helper()
	appendLog := func(ctx *ProcCtx, stage string) error {
		for _, row := range ctx.Batch {
			res, err := ctx.Exec("SELECT n FROM counter WHERE id = 0")
			if err != nil {
				return err
			}
			seq := int64(0)
			if len(res.Rows) == 0 {
				if _, err := ctx.Exec("INSERT INTO counter (id, n) VALUES (0, 0)"); err != nil {
					return err
				}
			} else {
				seq = res.Rows[0][0].Int()
			}
			if _, err := ctx.Exec("UPDATE counter SET n = n + 1 WHERE id = 0"); err != nil {
				return err
			}
			if _, err := ctx.Exec("INSERT INTO log_t VALUES (?, ?, ?)",
				types.NewString(stage), row[0], types.NewInt(seq)); err != nil {
				return err
			}
		}
		return nil
	}
	must(t, e.RegisterProcedure(&Procedure{
		Name:     "sp_a",
		ReadSet:  []string{"counter"},
		WriteSet: []string{"counter", "log_t"},
		Handler: func(ctx *ProcCtx) error {
			if err := appendLog(ctx, "a"); err != nil {
				return err
			}
			return ctx.Emit("mid_s", ctx.Batch...)
		},
	}))
	must(t, e.RegisterProcedure(&Procedure{
		Name:     "sp_b",
		ReadSet:  []string{"counter"},
		WriteSet: []string{"counter", "log_t"},
		Handler: func(ctx *ProcCtx) error {
			return appendLog(ctx, "b")
		},
	}))
	must(t, e.BindStream("in_s", "sp_a", batchSize))
	must(t, e.BindStream("mid_s", "sp_b", 1))
}

func must(t testing.TB, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestWorkflowChainOrdering(t *testing.T) {
	e := newTestPE(t, Config{}, counterDDL)
	registerChain(t, e, 1)
	must(t, e.Start())
	defer e.Stop()
	for v := int64(1); v <= 5; v++ {
		must(t, e.Ingest("in_s", intRow(v)))
	}
	e.Drain()
	res, err := e.Query("SELECT stage, v FROM log_t ORDER BY seq")
	must(t, err)
	// ModeWorkflowSerial: a(1) b(1) a(2) b(2) ... strictly interleaved.
	want := []string{"a1", "b1", "a2", "b2", "a3", "b3", "a4", "b4", "a5", "b5"}
	if len(res.Rows) != len(want) {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for i, r := range res.Rows {
		got := fmt.Sprintf("%s%d", r[0].Str(), r[1].Int())
		if got != want[i] {
			t.Fatalf("position %d: %s want %s (full: %v)", i, got, want[i], res.Rows)
		}
	}
	// Stream tuples consumed by sp_b must be garbage collected.
	if n, _ := e.Query("SELECT COUNT(*) FROM mid_s"); n.Rows[0][0].Int() != 0 {
		t.Error("mid_s not GC'd")
	}
	if n, _ := e.Query("SELECT COUNT(*) FROM in_s"); n.Rows[0][0].Int() != 0 {
		t.Error("in_s retained rows (border batches are not stored)")
	}
	m := e.Metrics().Snapshot()
	if m.BatchesBorder != 5 || m.TriggeredTxns != 5 {
		t.Errorf("border=%d triggered=%d", m.BatchesBorder, m.TriggeredTxns)
	}
}

func TestBatchSizeGrouping(t *testing.T) {
	e := newTestPE(t, Config{}, counterDDL)
	registerChain(t, e, 3)
	must(t, e.Start())
	defer e.Stop()
	for v := int64(1); v <= 7; v++ { // 7 tuples: two full batches + partial
		must(t, e.Ingest("in_s", intRow(v)))
	}
	e.Drain()
	if got := e.Metrics().BatchesBorder.Load(); got != 2 {
		t.Fatalf("border batches = %d, want 2 (partial must wait)", got)
	}
	e.FlushBatches()
	e.Drain()
	if got := e.Metrics().BatchesBorder.Load(); got != 3 {
		t.Fatalf("after flush: %d", got)
	}
	res, _ := e.Query("SELECT COUNT(*) FROM log_t WHERE stage = 'a'")
	if res.Rows[0][0].Int() != 7 {
		t.Fatalf("processed %d tuples", res.Rows[0][0].Int())
	}
}

func TestNaturalOrderPreserved(t *testing.T) {
	// Natural order: TEs of the same procedure execute in batch order even
	// when ingested from multiple goroutines (arrival order is admission
	// order).
	e := newTestPE(t, Config{}, counterDDL)
	registerChain(t, e, 1)
	must(t, e.Start())
	defer e.Stop()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				_ = e.Ingest("in_s", intRow(int64(g*100+i)))
			}
		}(g)
	}
	wg.Wait()
	e.Drain()
	// Per-source monotonicity: for each goroutine g, its values must appear
	// in its submission order within stage a.
	res, _ := e.Query("SELECT v FROM log_t WHERE stage = 'a' ORDER BY seq")
	lastPer := map[int64]int64{}
	for _, r := range res.Rows {
		v := r[0].Int()
		g := v / 100
		if prev, ok := lastPer[g]; ok && v <= prev {
			t.Fatalf("source %d went backwards: %d after %d", g, v, prev)
		}
		lastPer[g] = v
	}
	if len(res.Rows) != 100 {
		t.Fatalf("lost tuples: %d", len(res.Rows))
	}
}

func TestOLTPCall(t *testing.T) {
	e := newTestPE(t, Config{}, counterDDL)
	must(t, e.RegisterProcedure(&Procedure{
		Name: "bump",
		Handler: func(ctx *ProcCtx) error {
			if len(ctx.Params) != 1 {
				return fmt.Errorf("want 1 param")
			}
			if _, err := ctx.Exec("INSERT INTO counter (id, n) VALUES (?, 1)", ctx.Params[0]); err != nil {
				// exists: bump
				_, err = ctx.Exec("UPDATE counter SET n = n + 1 WHERE id = ?", ctx.Params[0])
				return err
			}
			return nil
		},
	}))
	must(t, e.Start())
	defer e.Stop()
	for i := 0; i < 5; i++ {
		if _, err := e.Call("bump", types.NewInt(7)); err != nil {
			t.Fatal(err)
		}
	}
	res, _ := e.Query("SELECT n FROM counter WHERE id = 7")
	if res.Rows[0][0].Int() != 5 {
		t.Fatalf("n = %v", res.Rows)
	}
	if _, err := e.Call("nosuch"); err == nil {
		t.Error("unknown procedure accepted")
	}
}

func TestAbortRollsBackEverything(t *testing.T) {
	e := newTestPE(t, Config{}, counterDDL)
	must(t, e.RegisterProcedure(&Procedure{
		Name: "half",
		Handler: func(ctx *ProcCtx) error {
			if _, err := ctx.Exec("INSERT INTO counter (id, n) VALUES (1, 1)"); err != nil {
				return err
			}
			if err := ctx.Emit("mid_s", intRow(42)); err != nil {
				return err
			}
			return ctx.Abort("changed my mind")
		},
	}))
	must(t, e.RegisterProcedure(&Procedure{
		Name:    "sink",
		Handler: func(ctx *ProcCtx) error { return nil },
	}))
	must(t, e.BindStream("mid_s", "sink", 1))
	must(t, e.Start())
	defer e.Stop()
	if _, err := e.Call("half"); err == nil || !strings.Contains(err.Error(), "changed my mind") {
		t.Fatalf("err = %v", err)
	}
	res, _ := e.Query("SELECT COUNT(*) FROM counter")
	if res.Rows[0][0].Int() != 0 {
		t.Error("aborted insert visible")
	}
	res, _ = e.Query("SELECT COUNT(*) FROM mid_s")
	if res.Rows[0][0].Int() != 0 {
		t.Error("aborted emission visible")
	}
	e.Drain()
	// Crucially: no downstream TE fired for the aborted emission.
	if got := e.Metrics().TriggeredTxns.Load(); got != 0 {
		t.Errorf("aborted TE triggered %d downstream txns", got)
	}
	if e.Metrics().TxnAborted.Load() != 1 {
		t.Error("abort not counted")
	}
}

func TestPanicBecomesAbort(t *testing.T) {
	e := newTestPE(t, Config{}, counterDDL)
	must(t, e.RegisterProcedure(&Procedure{
		Name: "boom",
		Handler: func(ctx *ProcCtx) error {
			_, _ = ctx.Exec("INSERT INTO counter (id, n) VALUES (9, 9)")
			panic("kaboom")
		},
	}))
	must(t, e.Start())
	defer e.Stop()
	if _, err := e.Call("boom"); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v", err)
	}
	res, _ := e.Query("SELECT COUNT(*) FROM counter")
	if res.Rows[0][0].Int() != 0 {
		t.Error("panic left partial state")
	}
	// Engine still works.
	if _, err := e.Query("SELECT COUNT(*) FROM counter"); err != nil {
		t.Fatal(err)
	}
}

func TestBatchVisibleToSQL(t *testing.T) {
	e := newTestPE(t, Config{}, counterDDL)
	must(t, e.RegisterProcedure(&Procedure{
		Name: "sql_batch",
		Handler: func(ctx *ProcCtx) error {
			_, err := ctx.Exec("INSERT INTO log_t SELECT 'x', v, 0 FROM batch WHERE v % 2 = 0")
			return err
		},
	}))
	must(t, e.BindStream("in_s", "sql_batch", 4))
	must(t, e.Start())
	defer e.Stop()
	must(t, e.Ingest("in_s", intRow(1), intRow(2), intRow(3), intRow(4)))
	e.Drain()
	res, _ := e.Query("SELECT v FROM log_t ORDER BY v")
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 2 || res.Rows[1][0].Int() != 4 {
		t.Fatalf("batch SQL: %v", res.Rows)
	}
}

func TestFIFOModeRejectsSharedTables(t *testing.T) {
	e := newTestPE(t, Config{Mode: ModeFIFO}, counterDDL)
	registerChain(t, e, 1)
	if err := e.Start(); err == nil || !strings.Contains(err.Error(), "share writable table") {
		t.Fatalf("expected shared-table rejection, got %v", err)
	}
	// ForceUnsafe permits it (for the ablation).
	e2 := newTestPE(t, Config{Mode: ModeFIFO, ForceUnsafe: true}, counterDDL)
	registerChain(t, e2, 1)
	must(t, e2.Start())
	e2.Stop()
}

func TestHStoreModeRejectsBindings(t *testing.T) {
	e := newTestPE(t, Config{HStoreMode: true}, counterDDL)
	must(t, e.RegisterProcedure(&Procedure{Name: "p", Handler: func(*ProcCtx) error { return nil }}))
	if err := e.BindStream("in_s", "p", 1); err == nil {
		t.Fatal("H-Store mode accepted a PE trigger binding")
	}
}

func TestIngestUnboundStreamFails(t *testing.T) {
	e := newTestPE(t, Config{}, counterDDL)
	must(t, e.Start())
	defer e.Stop()
	if err := e.Ingest("in_s", intRow(1)); err == nil {
		t.Fatal("ingest into unbound stream accepted")
	}
}

func TestRegistrationErrors(t *testing.T) {
	e := newTestPE(t, Config{}, counterDDL)
	if err := e.RegisterProcedure(&Procedure{Name: ""}); err == nil {
		t.Error("empty procedure accepted")
	}
	must(t, e.RegisterProcedure(&Procedure{Name: "p", Handler: func(*ProcCtx) error { return nil }}))
	if err := e.RegisterProcedure(&Procedure{Name: "P", Handler: func(*ProcCtx) error { return nil }}); err == nil {
		t.Error("duplicate (case-insensitive) accepted")
	}
	if err := e.BindStream("nosuch", "p", 1); err == nil {
		t.Error("binding unknown stream accepted")
	}
	if err := e.BindStream("in_s", "nosuch", 1); err == nil {
		t.Error("binding unknown proc accepted")
	}
	must(t, e.BindStream("in_s", "p", 1))
	if err := e.BindStream("in_s", "p", 1); err == nil {
		t.Error("double binding accepted")
	}
}

// TestBatchSizeValidation pins the shim/strict split: the legacy
// BindStream clamps batchSize < 1 to 1 (documented historical behavior),
// while the graph-scoped bind rejects it with an error.
func TestBatchSizeValidation(t *testing.T) {
	e := newTestPE(t, Config{}, counterDDL)
	must(t, e.RegisterProcedure(&Procedure{Name: "p", Handler: func(*ProcCtx) error { return nil }}))
	if err := e.BindStreamGraph("g", "in_s", "p", 0); err == nil ||
		!strings.Contains(err.Error(), "batch size 0") {
		t.Fatalf("graph bind accepted batch size 0: %v", err)
	}
	if err := e.BindStreamGraph("g", "in_s", "p", -5); err == nil {
		t.Fatal("graph bind accepted a negative batch size")
	}
	// Legacy shim clamps instead.
	must(t, e.BindStream("in_s", "p", 0))
	if g, ok := e.BoundGraph("in_s"); !ok || g != "" {
		t.Fatalf("legacy bind recorded graph %q, ok=%v", g, ok)
	}
	e.UnbindStream("in_s")
	if _, ok := e.BoundGraph("in_s"); ok {
		t.Fatal("unbind left the stream bound")
	}
	must(t, e.BindStreamGraph("g", "in_s", "p", 3))
	if g, ok := e.BoundGraph("in_s"); !ok || g != "g" {
		t.Fatalf("graph bind recorded graph %q, ok=%v", g, ok)
	}
}

func TestReplayRebuildState(t *testing.T) {
	// Execute a workflow live with an in-memory logger, then replay the
	// records into a fresh engine and compare final states.
	var records []*LogRecord
	logger := loggerFunc(func(rec *LogRecord) error {
		records = append(records, cloneRecord(rec))
		return nil
	})

	build := func() *Engine {
		e := newTestPE(t, Config{}, counterDDL)
		registerChain(t, e, 2)
		return e
	}
	live := build()
	live.SetLogger(logger, LogBorderOnly)
	must(t, live.Start())
	for v := int64(1); v <= 6; v++ {
		must(t, live.Ingest("in_s", intRow(v)))
	}
	live.Drain()
	wantLog, _ := live.Query("SELECT stage, v, seq FROM log_t ORDER BY seq")
	live.Stop()

	// Only border records should be logged in upstream-backup mode.
	for _, r := range records {
		if r.Kind != RecBorder {
			t.Fatalf("unexpected record kind %d in LogBorderOnly", r.Kind)
		}
	}
	if len(records) != 3 {
		t.Fatalf("%d border records, want 3", len(records))
	}

	re := build()
	for _, rec := range records {
		must(t, re.Replay(rec))
	}
	gotLog, err := queryStopped(re, "SELECT stage, v, seq FROM log_t ORDER BY seq")
	must(t, err)
	if len(gotLog.Rows) != len(wantLog.Rows) {
		t.Fatalf("replayed %d rows want %d", len(gotLog.Rows), len(wantLog.Rows))
	}
	for i := range gotLog.Rows {
		if !gotLog.Rows[i].Equal(wantLog.Rows[i]) {
			t.Fatalf("row %d: %v want %v", i, gotLog.Rows[i], wantLog.Rows[i])
		}
	}
	if re.NextBatchID() != 3 {
		t.Errorf("batch counter not restored: %d", re.NextBatchID())
	}
}

func TestReplayAllTEsMode(t *testing.T) {
	var records []*LogRecord
	logger := loggerFunc(func(rec *LogRecord) error {
		records = append(records, cloneRecord(rec))
		return nil
	})
	build := func() *Engine {
		e := newTestPE(t, Config{}, counterDDL)
		registerChain(t, e, 1)
		return e
	}
	live := build()
	live.SetLogger(logger, LogAllTEs)
	must(t, live.Start())
	for v := int64(1); v <= 4; v++ {
		must(t, live.Ingest("in_s", intRow(v)))
	}
	live.Drain()
	want, _ := live.Query("SELECT stage, v, seq FROM log_t ORDER BY seq")
	live.Stop()

	// Both border and triggered records present.
	kinds := map[RecordKind]int{}
	for _, r := range records {
		kinds[r.Kind]++
	}
	if kinds[RecBorder] != 4 || kinds[RecTriggered] != 4 {
		t.Fatalf("kinds = %v", kinds)
	}

	re := build()
	re.SetLogger(nil, LogAllTEs) // mode matters for replay semantics
	re.logMode = LogAllTEs
	for _, rec := range records {
		must(t, re.Replay(rec))
	}
	got, err := queryStopped(re, "SELECT stage, v, seq FROM log_t ORDER BY seq")
	must(t, err)
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("replayed %d rows want %d", len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		if !got.Rows[i].Equal(want.Rows[i]) {
			t.Fatalf("row %d: %v want %v", i, got.Rows[i], want.Rows[i])
		}
	}
}

// queryStopped runs a read-only query directly against a stopped engine.
func queryStopped(e *Engine, sqlText string) (*ee.Result, error) {
	return e.ee.ExecSQL(&ee.ExecCtx{ReadOnly: true}, sqlText)
}

type loggerFunc func(rec *LogRecord) error

func (f loggerFunc) LogCommit(rec *LogRecord) error { return f(rec) }

func cloneRecord(rec *LogRecord) *LogRecord {
	c := *rec
	c.Params = append([]types.Value(nil), rec.Params...)
	c.Batch = make([]types.Row, len(rec.Batch))
	for i, r := range rec.Batch {
		c.Batch[i] = r.Clone()
	}
	return &c
}
