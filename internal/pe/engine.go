package pe

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ee"
	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/types"
)

// LogMode selects what the commit logger records.
type LogMode uint8

const (
	// LogBorderOnly is S-Store's upstream backup: only client inputs
	// (border batches and OLTP calls) are logged; triggered executions are
	// re-derived deterministically during replay.
	LogBorderOnly LogMode = iota
	// LogAllTEs logs every transaction execution, including PE-triggered
	// ones. Replay then suppresses PE triggers and replays each TE from the
	// log. More log volume, less replay computation (the E5 ablation).
	LogAllTEs
)

// RecordKind tags command-log records.
type RecordKind uint8

// Log record kinds.
const (
	RecCall RecordKind = iota + 1
	RecBorder
	RecTriggered
	// RecPrepare is a 2PC participant leg: the re-executable write ops of
	// one partition's share of a multi-partition transaction, forced before
	// the partition votes yes. Recovery applies it only when the
	// coordinator's decision record says the transaction committed
	// (presumed abort).
	RecPrepare
	// RecDecide marks a 2PC resolution. In the coordinator's log it is the
	// decision record recovery resolves in-doubt legs from; in a
	// participant's log it is an unforced marker, skipped at replay.
	RecDecide
	// RecSlotBegin / RecSlotCopied / RecSlotCommit narrate one routing
	// slot's migration in the coordinator log (they never appear in a
	// partition log). RecSlotCommit is the atomic cutover point: it doubles
	// as the commit decision for the migration's RecPrepare leg in the
	// target partition's log, and recovery applies its ownership change to
	// the slot table. A BEGIN or COPIED with no COMMIT is an interrupted
	// migration — presumed aborted, ownership unchanged.
	RecSlotBegin
	RecSlotCopied
	RecSlotCommit
	// RecPauseGraph / RecResumeGraph make a dataflow's pause state durable
	// (coordinator log only; Proc carries the graph name). Recovery replays
	// them in order: a pause with no later resume restores the pause gate,
	// so a paused graph does not silently resume ingesting after a crash.
	RecPauseGraph
	RecResumeGraph
)

// LogRecord is one command-log entry: enough to re-execute the client
// request (or TE, in LogAllTEs mode) deterministically.
type LogRecord struct {
	Kind        RecordKind
	Proc        string
	Params      []types.Value
	Batch       []types.Row
	BatchID     uint64
	InputStream string

	// 2PC fields (RecPrepare / RecDecide only; RecSlotCommit carries the
	// MPTxnID of the migration's prepared leg).
	MPTxnID uint64
	Ops     []LoggedOp // RecPrepare: the leg's writes, in execution order
	Commit  bool       // RecDecide: true = commit

	// Slot-migration fields (RecSlotBegin / RecSlotCopied / RecSlotCommit).
	Slot     int
	FromPart int
	ToPart   int
}

// CommitLogger is the durability hook the partition engine calls at commit
// time, before acknowledging the client. Implemented by the wal package.
type CommitLogger interface {
	LogCommit(rec *LogRecord) error
}

// AsyncCommitLogger is the group-commit extension of CommitLogger: the
// append and the fsync are decoupled, so the partition worker can keep
// executing subsequent transactions while a batch of commit records drains
// to disk. LogCommitAsync appends the record and returns a commit future
// that resolves (nil on success) once the record is durable; the engine
// acknowledges the client only then, preserving the command-log guarantee.
// SyncCommits forces everything appended so far durable and resolves every
// outstanding future before returning — the checkpoint barrier's drain.
type AsyncCommitLogger interface {
	CommitLogger
	// AsyncCommit reports whether the logger is currently batching fsyncs;
	// when false the engine uses the synchronous LogCommit path.
	AsyncCommit() bool
	LogCommitAsync(rec *LogRecord) (<-chan error, error)
	SyncCommits() error
}

// pendingAck is one commit awaiting its fsync: the transaction has executed
// and its record is appended, but the client is not acknowledged until the
// commit future resolves.
type pendingAck struct {
	r     *txnRequest
	out   *ee.Result
	ack   <-chan error
	start time.Time
}

// ackQueueDepth bounds the in-flight commit pipeline; a full queue applies
// backpressure to the partition worker.
const ackQueueDepth = 4096

// Config controls a partition engine instance.
type Config struct {
	// Mode selects the admission policy (see SchedulerMode).
	Mode SchedulerMode
	// HStoreMode disables the streaming machinery inside transactions (EE
	// triggers and native window maintenance) and ignores stream bindings —
	// the naïve baseline of §3.1. Clients must drive workflows themselves.
	HStoreMode bool
	// ForceUnsafe permits ModeFIFO even when a workflow's procedures share
	// writable tables (used only by the scheduler ablation experiments).
	ForceUnsafe bool
	// MemoryBudget bounds the heap bytes of resident row versions across
	// this partition's evictable tables (0 = unlimited). When exceeded,
	// the evictor — running at the GC rhythm — moves cold committed
	// versions into the catalog's attached cold store until back under.
	MemoryBudget int64
	// PinWorkers locks the partition worker goroutine to one OS thread
	// (runtime.LockOSThread). With one worker per partition and enough
	// cores, each serial execution loop then keeps its cache and (on NUMA
	// hosts, combined with OS-level thread affinity policy) its memory
	// node — the first step of the roadmap's NUMA awareness. Off by
	// default: on overcommitted hosts dedicating threads can hurt.
	PinWorkers bool
}

// binding wires a stream to the downstream procedure its tuples feed, as
// one edge of a dataflow graph (graph == "" for legacy direct binds).
type binding struct {
	stream    string
	proc      *Procedure
	batchSize int
	graph     string
	stats     *metrics.GraphStats // nil when graph == ""
}

// Engine is one partition's engine. All transaction executions run serially
// on the partition goroutine; clients interact through Call / Ingest /
// Query from any goroutine.
type Engine struct {
	ee    *ee.Engine
	met   *metrics.Metrics
	cfg   Config
	sched *scheduler

	// clock is the partition's commit clock (shared with every table via
	// the catalog). The worker stamps writes with the pending sequence and
	// publishes at each commit point; snapshot reads pin a published
	// sequence and run on the caller's goroutine.
	clock *storage.PartitionClock
	// commitsSinceGC / lastRetained pace the worker's periodic version
	// sweeps (worker goroutine only). lastColdEvict / lastColdFault turn
	// the tables' cumulative anti-caching counters into metric deltas.
	commitsSinceGC int
	lastRetained   int
	lastColdEvict  uint64
	lastColdFault  uint64
	lastResident   int64

	procs map[string]*Procedure
	// bindings maps lowercased stream name -> consumer. Guarded by
	// ingestMu: dataflow deployment may add edges at runtime (under an
	// all-partition barrier) while clients are inside Ingest.
	bindings map[string]*binding
	// pausedGraphs gates dispatch per dataflow: while a graph is paused,
	// ingest into its streams queues tuples in partial (bounded by
	// MaxPausedBacklog) without cutting batches, and PE-triggered
	// emissions into its streams defer into pausedTriggered. Guarded by
	// ingestMu.
	pausedGraphs map[string]bool
	// pausedTriggered holds the PE-triggered executions deferred while
	// their graph was paused, in emission order; ResumeGraph dispatches
	// them ahead of the queued border batches. Guarded by ingestMu.
	pausedTriggered map[string][]*txnRequest

	// graphInflight counts each graph's admitted-but-unfinished
	// transaction executions; PauseDataflow's drain waits per graph on it
	// instead of quiescing the whole partition (other graphs keep
	// running).
	flightMu      sync.Mutex
	flightCond    *sync.Cond
	graphInflight map[string]int

	// per-procedure prepared-statement caches; the "batch" transient
	// relation resolves against the bound input stream's schema.
	prepMu   sync.Mutex
	prepared map[string]map[string]*ee.Prepared

	logger  CommitLogger
	logMode LogMode

	// Group-commit ack pipeline: the worker queues committed-but-not-yet-
	// durable requests here and the acker goroutine acknowledges each once
	// its commit future resolves. ackPending counts queued-but-unacked
	// commits; the checkpoint barrier waits for it to reach zero.
	asyncLog   AsyncCommitLogger // nil unless the logger batches fsyncs
	ackQ       chan pendingAck
	ackWG      sync.WaitGroup
	ackMu      sync.Mutex
	ackCond    *sync.Cond
	ackPending int

	ingestMu    sync.Mutex
	partial     map[string][]types.Row // border stream -> partial batch
	nextBatchID uint64

	nextTxnID uint64 // touched only by the partition goroutine / replay

	started atomic.Bool
	wg      sync.WaitGroup

	// replayQueue collects triggered executions during recovery replay so
	// they run inline instead of through the (stopped) worker.
	replayQueue []*txnRequest
	replaying   bool
	// replayDecisions maps multi-partition transaction ids to their commit
	// decision (from the coordinator log); absent = presumed abort.
	replayDecisions map[uint64]bool
	// replaySlotMoves maps a slot-migration leg's transaction id to its
	// slot, and slotEvict clears that slot's stale local rows before the
	// leg's images apply (see SetReplaySlotMoves).
	replaySlotMoves map[uint64]int
	slotEvict       func(slot int) error

	// localTriggered is the partition worker's private queue of PE-
	// triggered executions (they are produced and consumed by the worker,
	// so no locking is needed). Used in ModeWorkflowSerial.
	localTriggered []*txnRequest
}

// New creates a partition engine over an execution engine.
func New(exec *ee.Engine, cfg Config) *Engine {
	e := &Engine{
		ee:              exec,
		met:             exec.Metrics(),
		clock:           exec.Catalog().Clock(),
		cfg:             cfg,
		sched:           newScheduler(cfg.Mode),
		procs:           make(map[string]*Procedure),
		bindings:        make(map[string]*binding),
		pausedGraphs:    make(map[string]bool),
		pausedTriggered: make(map[string][]*txnRequest),
		graphInflight:   make(map[string]int),
		prepared:        make(map[string]map[string]*ee.Prepared),
		partial:         make(map[string][]types.Row),
	}
	e.ackCond = sync.NewCond(&e.ackMu)
	e.flightCond = sync.NewCond(&e.flightMu)
	return e
}

// graphTakeoff records one admitted execution for a graph's in-flight
// count; graphDone retires it. WaitGraphIdle blocks until the graph has no
// admitted-but-unfinished executions — the graph-scoped drain pause uses.
func (e *Engine) graphTakeoff(name string) {
	e.flightMu.Lock()
	e.graphInflight[name]++
	e.flightMu.Unlock()
}

func (e *Engine) graphDone(name string) {
	e.flightMu.Lock()
	e.graphInflight[name]--
	if e.graphInflight[name] <= 0 {
		delete(e.graphInflight, name)
		e.flightCond.Broadcast()
	}
	e.flightMu.Unlock()
}

// WaitGraphIdle blocks until every admitted execution of the named graph
// has finished. Descendants are counted before their parent retires, so a
// chain keeps the count positive until its last running stage commits.
func (e *Engine) WaitGraphIdle(name string) {
	e.flightMu.Lock()
	for e.graphInflight[name] > 0 {
		e.flightCond.Wait()
	}
	e.flightMu.Unlock()
}

// EE exposes the execution engine (used by assembly and tests).
func (e *Engine) EE() *ee.Engine { return e.ee }

// Metrics returns the shared counter set.
func (e *Engine) Metrics() *metrics.Metrics { return e.met }

// SetLogger installs the commit logger (must be called before Start). When
// the logger implements AsyncCommitLogger and reports AsyncCommit, commits
// pipeline: the worker appends and moves on, and acknowledgements are
// delivered by the acker goroutine as batches become durable.
func (e *Engine) SetLogger(l CommitLogger, mode LogMode) {
	e.logger = l
	e.logMode = mode
	e.asyncLog = nil
	if al, ok := l.(AsyncCommitLogger); ok && al.AsyncCommit() {
		e.asyncLog = al
	}
}

// RegisterProcedure adds a stored procedure. Procedures must be registered
// before Start and before any binding that references them.
func (e *Engine) RegisterProcedure(p *Procedure) error {
	if p.Name == "" || p.Handler == nil {
		return fmt.Errorf("pe: procedure needs a name and a handler")
	}
	key := strings.ToLower(p.Name)
	if _, dup := e.procs[key]; dup {
		return fmt.Errorf("pe: procedure %q already registered", p.Name)
	}
	e.procs[key] = p
	return nil
}

// Procedure looks up a registered procedure by name.
func (e *Engine) Procedure(name string) *Procedure { return e.procs[strings.ToLower(name)] }

// BindStream declares that tuples arriving on stream become input batches
// of size batchSize for proc — the PE trigger wiring of a workflow edge.
// Client-fed streams make proc a border procedure (BSP); procedure-fed
// streams make it interior (ISP). In HStoreMode bindings are rejected:
// the baseline has no PE triggers.
//
// BindStream is the legacy single-edge API kept as a compat shim over the
// dataflow-scoped wiring: it silently clamps batchSize < 1 to 1
// (historical behavior old callers rely on), where the Dataflow deploy
// path rejects an invalid batch size with an error.
func (e *Engine) BindStream(stream, procName string, batchSize int) error {
	if batchSize < 1 {
		batchSize = 1
	}
	return e.BindStreamGraph("", stream, procName, batchSize)
}

// BindStreamGraph wires stream -> proc as one edge of the named dataflow
// graph. Unlike the legacy BindStream shim it rejects batchSize < 1.
// Edges of a named graph feed that graph's counters and honor its
// pause/resume lifecycle.
func (e *Engine) BindStreamGraph(graph, stream, procName string, batchSize int) error {
	if e.cfg.HStoreMode {
		return fmt.Errorf("pe: stream bindings are an S-Store feature; engine is in H-Store mode")
	}
	if batchSize < 1 {
		return fmt.Errorf("pe: batch size %d for stream %q is invalid (must be >= 1)", batchSize, stream)
	}
	p := e.Procedure(procName)
	if p == nil {
		return fmt.Errorf("pe: unknown procedure %q", procName)
	}
	rel := e.ee.Catalog().Relation(stream)
	if rel == nil {
		return fmt.Errorf("pe: unknown stream %q", stream)
	}
	var stats *metrics.GraphStats
	if graph != "" {
		stats = e.met.Graph(graph)
	}
	key := strings.ToLower(stream)
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	if _, dup := e.bindings[key]; dup {
		return fmt.Errorf("pe: stream %q already has a consumer", stream)
	}
	e.bindings[key] = &binding{stream: rel.Name, proc: p, batchSize: batchSize, graph: graph, stats: stats}
	e.ee.MarkStreamPersistent(stream)
	return nil
}

// UnbindStream removes a stream's consumer edge and drops its partial
// border batch (dataflow deploy rollback).
func (e *Engine) UnbindStream(stream string) {
	key := strings.ToLower(stream)
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	if b := e.bindings[key]; b != nil {
		delete(e.partial, b.stream)
	}
	delete(e.bindings, key)
}

// BoundGraph reports the dataflow owning a stream's consumer edge ("" for
// a legacy direct bind) and whether the stream is bound at all.
func (e *Engine) BoundGraph(stream string) (string, bool) {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	b := e.bindings[strings.ToLower(stream)]
	if b == nil {
		return "", false
	}
	return b.graph, true
}

// Started reports whether the partition worker is running.
func (e *Engine) Started() bool { return e.started.Load() }

// PauseGraph gates dispatch for the named dataflow: subsequent ingest
// into its streams queues tuples (bounded) instead of cutting batches,
// and PE-triggered emissions into them defer (see dispatchEmits).
// Executions already admitted finish — the store-level pause waits for
// them with WaitGraphIdle after setting the gate.
func (e *Engine) PauseGraph(name string) {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	e.pausedGraphs[name] = true
}

// ResumeGraph lifts a dataflow's pause gate and dispatches everything
// that queued while it was down: first the deferred PE-triggered work
// (upstream of any border tuple that arrived during the pause), then
// every full border batch.
func (e *Engine) ResumeGraph(name string) error {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	delete(e.pausedGraphs, name)
	deferred := e.pausedTriggered[name]
	delete(e.pausedTriggered, name)
	for i, tr := range deferred {
		if !e.pushTracked(tr) {
			e.pausedTriggered[name] = deferred[i:]
			return fmt.Errorf("pe: engine stopped")
		}
	}
	for _, b := range e.bindings {
		if b.graph != name {
			continue
		}
		if err := e.cutBatchesLocked(b); err != nil {
			return err
		}
	}
	return nil
}

// DropGraph discards a dataflow's pause gate and any work that deferred
// behind it (undeploy: the graph is going away, so its queued batches and
// deferred triggered executions go with it).
func (e *Engine) DropGraph(name string) {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	delete(e.pausedGraphs, name)
	delete(e.pausedTriggered, name)
}

// PartialLen reports the tuples buffered (partial batch + paused backlog)
// for a stream — the router's store-wide paused-backlog accounting.
func (e *Engine) PartialLen(stream string) int {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	if b := e.bindings[strings.ToLower(stream)]; b != nil {
		return len(e.partial[b.stream])
	}
	return 0
}

// ExtractPartial removes and returns, in arrival order, the buffered
// border tuples of stream selected by match. Slot migration uses it to
// re-home a half-full batch's tuples along with their keys — left behind,
// they would execute on the old owner at the next cut or flush and rebuild
// migrated rows there. Paused dataflows keep their backlog (documented:
// resume before rebalancing), and unbound streams buffer nothing.
func (e *Engine) ExtractPartial(stream string, match func(types.Row) bool) []types.Row {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	b := e.bindings[strings.ToLower(stream)]
	if b == nil || e.pausedGraphs[b.graph] {
		return nil
	}
	pend := e.partial[b.stream]
	var taken []types.Row
	kept := pend[:0]
	for _, r := range pend {
		if match(r) {
			taken = append(taken, r)
		} else {
			kept = append(kept, r)
		}
	}
	if len(taken) == 0 {
		return nil
	}
	e.partial[b.stream] = kept
	return taken
}

// Start validates the workflow wiring and launches the partition worker.
func (e *Engine) Start() error {
	if e.started.Load() {
		return fmt.Errorf("pe: already started")
	}
	if err := e.validateWorkflows(); err != nil {
		return err
	}
	// Publish once so data seeded before Start (DDL-time inserts, snapshot
	// restore, direct EE writes) is visible to snapshot readers; those
	// writes were stamped with the pending sequence and never committed
	// through the worker.
	e.clock.Publish()
	e.started.Store(true)
	if e.asyncLog != nil {
		e.ackQ = make(chan pendingAck, ackQueueDepth)
		e.ackWG.Add(1)
		go e.acker()
	}
	e.wg.Add(1)
	go e.worker()
	return nil
}

// Stop drains nothing: it closes the queue and waits for the worker, then
// forces outstanding group commits durable and waits for their acks.
func (e *Engine) Stop() {
	if !e.started.Load() {
		return
	}
	e.sched.close()
	e.wg.Wait()
	// Queued-but-never-executed requests were discarded with the
	// scheduler; release any graph-idle waiters parked on their counts.
	e.flightMu.Lock()
	e.graphInflight = make(map[string]int)
	e.flightCond.Broadcast()
	e.flightMu.Unlock()
	if e.asyncLog != nil {
		// The worker has exited, so no new acks can be queued; resolving
		// every future lets the acker drain and terminate.
		_ = e.asyncLog.SyncCommits()
		close(e.ackQ)
		e.ackWG.Wait()
		e.ackQ = nil
	}
	e.started.Store(false)
}

// errNotStarted guards the synchronous client entry points: waiting on the
// worker before Start would deadlock the caller.
func (e *Engine) errNotStarted() error {
	if !e.started.Load() {
		return fmt.Errorf("pe: engine not started (call Start before issuing requests)")
	}
	return nil
}

// validateWorkflows detects shared writable tables among procedures
// connected by stream bindings. Per the paper such workflows require
// serial execution of the involved procedures, which ModeWorkflowSerial
// provides; ModeFIFO is rejected unless ForceUnsafe.
func (e *Engine) validateWorkflows() error {
	if e.cfg.Mode == ModeWorkflowSerial || e.cfg.ForceUnsafe {
		return nil
	}
	// Union the procedures reachable through bindings into one component
	// (fine-grained components are unnecessary: any conflict anywhere is a
	// rejection).
	var procs []*Procedure
	seen := map[string]bool{}
	e.ingestMu.Lock()
	for _, b := range e.bindings {
		if !seen[b.proc.Name] {
			seen[b.proc.Name] = true
			procs = append(procs, b.proc)
		}
	}
	e.ingestMu.Unlock()
	sort.Slice(procs, func(i, j int) bool { return procs[i].Name < procs[j].Name })
	if shared := SharedWritableTables(procs); len(shared) > 0 {
		return fmt.Errorf("pe: workflow procedures share writable tables %v; "+
			"ModeFIFO would violate the serial-execution requirement (use ModeWorkflowSerial)", shared)
	}
	return nil
}

// worker is the partition goroutine: it executes every transaction
// serially. Triggered work is goroutine-local (PE triggers fire from this
// goroutine), and client submissions are fetched in batches, so the
// shared lock is touched once per burst rather than once per transaction.
func (e *Engine) worker() {
	defer e.wg.Done()
	if e.cfg.PinWorkers {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	var pending []*txnRequest
	for {
		if len(e.localTriggered) > 0 {
			r := e.localTriggered[0]
			e.localTriggered = e.localTriggered[1:]
			e.executeRequest(r)
			continue
		}
		if len(pending) > 0 {
			r := pending[0]
			pending = pending[1:]
			e.executeRequest(r)
			continue
		}
		var ok bool
		e.localTriggered = e.localTriggered[:0]
		pending, ok = e.sched.popAll(pending[:0])
		if !ok {
			return
		}
	}
}

// acker delivers commit acknowledgements in LSN order: it waits on each
// queued commit's future and responds to the client once the record is
// durable. Queue order is append order, and one fsync covers a contiguous
// batch, so waiting on futures FIFO never blocks behind an unresolved
// later one.
func (e *Engine) acker() {
	defer e.ackWG.Done()
	for pa := range e.ackQ {
		err := <-pa.ack
		if err != nil {
			// The transaction executed but its record never became durable:
			// the client must not treat it as committed. Its in-memory
			// effects cannot be rolled back here — later transactions have
			// already executed on top — so the partition is left in a
			// degraded state: the poisoned log fails every subsequent logged
			// commit loudly, and the durable truth after a restart is the
			// log (which ends before this record). This mirrors what a
			// durability failure means for any command-logging system: the
			// process must restart and recover; it must never false-ack.
			pa.r.respond(nil, fmt.Errorf("pe: group commit: %w", err))
		} else {
			e.met.ObserveLatency(time.Since(pa.start))
			pa.r.respond(pa.out, nil)
		}
		e.ackMu.Lock()
		e.ackPending--
		if e.ackPending == 0 {
			e.ackCond.Broadcast()
		}
		e.ackMu.Unlock()
	}
}

// queueAck hands a committed request to the acker. Called only by the
// partition worker.
func (e *Engine) queueAck(r *txnRequest, out *ee.Result, ack <-chan error, start time.Time) {
	e.ackMu.Lock()
	e.ackPending++
	e.ackMu.Unlock()
	e.ackQ <- pendingAck{r: r, out: out, ack: ack, start: start}
}

// drainAcks forces every outstanding group commit durable and waits for its
// acknowledgement to be delivered. Runs on the partition worker at barrier
// points (checkpoint), so the snapshot+truncate that follows never destroys
// a log record whose future is still pending.
func (e *Engine) drainAcks() {
	if e.asyncLog == nil {
		return
	}
	_ = e.asyncLog.SyncCommits() // resolves every future; errors reach clients via the acker
	e.ackMu.Lock()
	for e.ackPending > 0 {
		e.ackCond.Wait()
	}
	e.ackMu.Unlock()
}

// ---------- client API ----------

// Call invokes a stored procedure as one OLTP transaction and waits for the
// result. One client→PE round trip.
func (e *Engine) Call(proc string, params ...types.Value) (*Result, error) {
	cr := <-e.CallAsync(proc, params...)
	return cr.Result, cr.Err
}

// CallAsync submits an invocation and returns a channel that yields the
// result; it lets clients pipeline requests (the H-Store baseline driver
// depends on this to model asynchronous submission).
func (e *Engine) CallAsync(proc string, params ...types.Value) <-chan CallResult {
	e.met.ClientToPE.Add(1)
	done := make(chan CallResult, 1)
	if err := e.errNotStarted(); err != nil {
		done <- CallResult{Err: err}
		return done
	}
	p := e.Procedure(proc)
	if p == nil {
		done <- CallResult{Err: fmt.Errorf("pe: unknown procedure %q", proc)}
		return done
	}
	now := time.Now()
	r := &txnRequest{kind: reqInvoke, proc: p, params: params, done: done, enqueued: now, origin: now}
	if !e.sched.push(r) {
		done <- CallResult{Err: fmt.Errorf("pe: engine stopped")}
	}
	return done
}

// MaxPausedBacklog bounds the tuples a paused dataflow may queue per
// stream; beyond it ingest rejects instead of growing without bound. The
// router applies the same bound store-wide before splitting a spanning
// batch, so a multi-partition ingest queues or rejects as a unit.
const MaxPausedBacklog = 1 << 16

// Ingest pushes tuples onto a border stream. Tuples accumulate into batches
// of the bound size; each full batch becomes one border transaction
// execution, processed in arrival order. One client→PE round trip per call
// regardless of tuple count — the push-based model's economy. While the
// stream's dataflow is paused, tuples queue (up to MaxPausedBacklog) and
// are dispatched by ResumeGraph.
func (e *Engine) Ingest(stream string, rows ...types.Row) error {
	e.met.ClientToPE.Add(1)
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	b := e.bindings[strings.ToLower(stream)]
	if b == nil {
		return fmt.Errorf("pe: stream %q has no bound procedure; nothing would consume the tuples", stream)
	}
	if e.pausedGraphs[b.graph] {
		if len(e.partial[b.stream])+len(rows) > MaxPausedBacklog {
			return fmt.Errorf("pe: dataflow %q is paused and stream %q has a full backlog (%d tuples); resume the dataflow or retry later",
				b.graph, b.stream, len(e.partial[b.stream]))
		}
		e.partial[b.stream] = append(e.partial[b.stream], cloneRows(rows)...)
		return nil
	}
	e.partial[b.stream] = append(e.partial[b.stream], cloneRows(rows)...)
	return e.cutBatchesLocked(b)
}

// cutBatchesLocked dispatches every full batch buffered for b's stream.
// The caller holds ingestMu.
func (e *Engine) cutBatchesLocked(b *binding) error {
	pend := e.partial[b.stream]
	for len(pend) >= b.batchSize {
		batch := pend[:b.batchSize:b.batchSize]
		pend = pend[b.batchSize:]
		e.nextBatchID++
		now := time.Now()
		r := &txnRequest{
			kind:        reqBorder,
			proc:        b.proc,
			batch:       batch,
			batchID:     e.nextBatchID,
			inputStream: b.stream,
			enqueued:    now,
			origin:      now,
			stats:       b.stats,
			graph:       b.graph,
		}
		if !e.pushTracked(r) {
			e.partial[b.stream] = pend
			return fmt.Errorf("pe: engine stopped")
		}
	}
	e.partial[b.stream] = pend
	return nil
}

// pushTracked submits a graph-owned request, keeping its graph's
// in-flight count consistent with the scheduler's acceptance.
func (e *Engine) pushTracked(r *txnRequest) bool {
	if r.graph != "" {
		r.tracked = true
		e.graphTakeoff(r.graph)
	}
	if e.sched.push(r) {
		return true
	}
	if r.tracked {
		r.tracked = false
		e.graphDone(r.graph)
	}
	return false
}

// FlushBatches dispatches any partial border batches (end of input).
// Streams of paused dataflows keep their queue.
func (e *Engine) FlushBatches() {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	for stream, pend := range e.partial {
		if len(pend) == 0 {
			continue
		}
		b := e.bindings[strings.ToLower(stream)]
		if b == nil || e.pausedGraphs[b.graph] {
			continue
		}
		e.nextBatchID++
		now := time.Now()
		e.pushTracked(&txnRequest{
			kind: reqBorder, proc: b.proc, batch: pend, batchID: e.nextBatchID,
			inputStream: b.stream, enqueued: now, origin: now, stats: b.stats,
			graph: b.graph,
		})
		e.partial[stream] = nil
	}
}

// Query runs an ad-hoc read-only SQL statement. SELECTs execute on the
// caller's goroutine against an MVCC snapshot pinned at the latest
// committed sequence: they never enter the partition's serial queue, so
// reads scale with client cores, see only committed state, and are not
// delayed by running transactions (or a parked 2PC leg). Statements that
// are not SELECTs fall back to the worker-queued path, preserving their
// historical error surfaces.
func (e *Engine) Query(sqlText string, params ...types.Value) (*Result, error) {
	if err := e.errNotStarted(); err != nil {
		return nil, err
	}
	p, err := e.ee.PrepareCached(sqlText)
	if err != nil {
		return nil, err
	}
	if !p.IsQuery() {
		return e.QueryOnWorker(sqlText, params...)
	}
	e.met.ClientToPE.Add(1)
	pin := e.AcquireSnapshot()
	defer e.ReleaseSnapshot(pin)
	return e.querySnapshot(p, pin.Seq(), params)
}

// AcquireSnapshot pins the latest committed sequence for snapshot reads;
// the pin holds the GC watermark until ReleaseSnapshot. The router uses
// the pair to assemble a consistent cross-partition snapshot vector.
func (e *Engine) AcquireSnapshot() storage.SnapPin { return e.clock.AcquireSnapshot() }

// ReleaseSnapshot drops a pin taken by AcquireSnapshot.
func (e *Engine) ReleaseSnapshot(pin storage.SnapPin) { e.clock.ReleaseSnapshot(pin) }

// QueryAtSeq runs a read-only SELECT on the caller's goroutine at a
// specific pinned sequence — the router's cross-partition fan-out leg. The
// caller must hold a pin on seq (AcquireSnapshot) for the duration.
func (e *Engine) QueryAtSeq(seq storage.Seq, sqlText string, params ...types.Value) (*Result, error) {
	if err := e.errNotStarted(); err != nil {
		return nil, err
	}
	return e.SnapshotQueryAtSeq(seq, sqlText, params...)
}

// SnapshotQueryAtSeq is QueryAtSeq without the started-engine guard: the
// snapshot path runs entirely on the caller's goroutine against versioned
// storage and never touches the partition worker, so it is also safe on an
// engine that was never started — the follower-replica read path, where
// records arrive via Replay and reads must not require a live worker.
func (e *Engine) SnapshotQueryAtSeq(seq storage.Seq, sqlText string, params ...types.Value) (*Result, error) {
	p, err := e.ee.PrepareCached(sqlText)
	if err != nil {
		return nil, err
	}
	if !p.IsQuery() {
		return nil, fmt.Errorf("pe: QueryAtSeq requires a SELECT, got %q", sqlText)
	}
	e.met.ClientToPE.Add(1)
	return e.querySnapshot(p, seq, params)
}

// querySnapshot executes a prepared SELECT at the pinned sequence. Runs on
// the caller's goroutine; touches only immutable plans and versioned
// storage.
func (e *Engine) querySnapshot(p *ee.Prepared, seq storage.Seq, params []types.Value) (*Result, error) {
	ectx := &ee.ExecCtx{ReadOnly: true, Snapshot: true, SnapshotSeq: seq}
	res, err := e.ee.Execute(ectx, p, params...)
	if err != nil {
		return nil, err
	}
	e.met.SnapshotReads.Add(1)
	out := &Result{Columns: res.Columns, Rows: res.Rows, RowsAffected: res.RowsAffected}
	return out, nil
}

// QueryOnWorker runs an ad-hoc read-only statement through the partition's
// serial queue — the pre-MVCC read path, kept for non-SELECT fallbacks and
// as the baseline the E9 experiment prices snapshot reads against.
func (e *Engine) QueryOnWorker(sqlText string, params ...types.Value) (*Result, error) {
	if err := e.errNotStarted(); err != nil {
		return nil, err
	}
	e.met.ClientToPE.Add(1)
	e.met.WorkerQueries.Add(1)
	done := make(chan CallResult, 1)
	r := &txnRequest{kind: reqQuery, sqlText: sqlText, params: params, done: done, enqueued: time.Now()}
	if !e.sched.push(r) {
		return nil, fmt.Errorf("pe: engine stopped")
	}
	cr := <-done
	return cr.Result, cr.Err
}

// Exec runs an ad-hoc DML statement as its own transaction. Ad-hoc writes
// are not command-logged — durable state changes belong in stored
// procedures; Exec exists for setup, tooling, and tests.
func (e *Engine) Exec(sqlText string, params ...types.Value) (*Result, error) {
	if err := e.errNotStarted(); err != nil {
		return nil, err
	}
	e.met.ClientToPE.Add(1)
	done := make(chan CallResult, 1)
	r := &txnRequest{kind: reqExec, sqlText: sqlText, params: params, done: done, enqueued: time.Now()}
	if !e.sched.push(r) {
		return nil, fmt.Errorf("pe: engine stopped")
	}
	cr := <-done
	return cr.Result, cr.Err
}

// RunExclusive executes fn on the partition goroutine with no transaction
// running — the quiescent point snapshots are taken at.
func (e *Engine) RunExclusive(fn func() error) error {
	if err := e.errNotStarted(); err != nil {
		return err
	}
	done := make(chan CallResult, 1)
	r := &txnRequest{kind: reqBarrier, fn: fn, done: done}
	if !e.sched.push(r) {
		return fmt.Errorf("pe: engine stopped")
	}
	cr := <-done
	return cr.Err
}

// Drain blocks until every queued request (including transitively triggered
// ones) has executed. Partial ingest batches are not flushed; call
// FlushBatches first if the input is complete.
func (e *Engine) Drain() {
	e.sched.mu.Lock()
	e.sched.drainWaiters++
	for !(len(e.sched.triggered) == 0 && len(e.sched.normal) == 0 && e.sched.idle) {
		if e.sched.closed {
			break
		}
		e.sched.cond.Wait()
	}
	e.sched.drainWaiters--
	e.sched.mu.Unlock()
}

func cloneRows(rows []types.Row) []types.Row {
	out := make([]types.Row, len(rows))
	for i, r := range rows {
		out[i] = r.Clone()
	}
	return out
}

// ---------- transaction execution ----------

type emission struct {
	stream string
	ids    []storage.RowID
	rows   []types.Row
}

// undoPool recycles undo logs across transaction executions; Release keeps
// the backing arrays, so steady-state execution allocates no undo memory.
var undoPool = sync.Pool{New: func() any { return storage.NewUndoLog() }}

func (e *Engine) executeRequest(r *txnRequest) {
	start := time.Now()
	if r.tracked {
		// Retire the graph's in-flight count whatever path this execution
		// takes (commit, abort, panic recovery). Descendants are counted
		// inside dispatchEmits, before this defer runs, so a chain never
		// reads as idle mid-flight.
		defer e.graphDone(r.graph)
	}
	if r.kind == reqQuery {
		ectx := &ee.ExecCtx{ReadOnly: true}
		res, err := e.ee.ExecSQL(ectx, r.sqlText, r.params...)
		r.respond(res, err)
		return
	}
	if r.kind == reqBarrier {
		e.drainAcks()
		// The checkpoint barrier drives a version sweep: the store is
		// quiescent here, so everything the watermark allows is reclaimed
		// before the snapshot is cut.
		e.runGC()
		r.respond(nil, r.fn())
		return
	}
	if r.kind == reqMP {
		e.executeMP(r)
		return
	}
	if r.kind == reqExec {
		undo := undoPool.Get().(*storage.UndoLog)
		ectx := &ee.ExecCtx{Undo: undo, DisableEETriggers: e.cfg.HStoreMode}
		res, err := e.ee.ExecSQL(ectx, r.sqlText, r.params...)
		if err != nil {
			undo.Rollback()
			e.met.TxnAborted.Add(1)
		} else {
			undo.Release()
			e.commitPublish()
			e.met.TxnCommitted.Add(1)
		}
		undoPool.Put(undo)
		r.respond(res, err)
		return
	}

	e.nextTxnID++
	txnID := e.nextTxnID
	undo := undoPool.Get().(*storage.UndoLog)
	defer func() {
		undo.Release()
		undoPool.Put(undo)
	}()
	var emits []emission
	ectx := &ee.ExecCtx{
		Undo:              undo,
		ProcName:          r.proc.Name,
		DisableEETriggers: e.cfg.HStoreMode,
		OnStreamInsert:    emissionCollector(&emits),
	}
	if r.batch != nil {
		ectx.NewRows = map[string][]types.Row{"batch": r.batch}
	}
	pctx := &ProcCtx{
		pe:      e,
		ectx:    ectx,
		Proc:    r.proc,
		Batch:   r.batch,
		BatchID: r.batchID,
		Params:  r.params,
		TxnID:   txnID,
	}

	// Border batches pass through their stream relation inside the TE:
	// this is what drives windows over border streams and EE triggers on
	// them (uniform state management, §2). The inserted rows are
	// garbage-collected at commit below — this TE is their consumer — and
	// the insert must not re-fire this stream's own PE trigger.
	if r.kind == reqBorder && r.inputStream != "" {
		saved := ectx.OnStreamInsert
		ectx.OnStreamInsert = func(stream string, ids []storage.RowID, rows []types.Row) {
			if stream == r.inputStream {
				r.gcIDs = append(r.gcIDs, ids...)
				return
			}
			if saved != nil {
				saved(stream, ids, rows)
			}
		}
		_, err := e.ee.InsertRows(ectx, r.inputStream, r.batch)
		ectx.OnStreamInsert = saved
		if err != nil {
			undo.Rollback()
			e.met.TxnAborted.Add(1)
			r.respond(nil, fmt.Errorf("pe: border ingest into %s: %w", r.inputStream, err))
			return
		}
	}

	if err := e.runHandler(r.proc, pctx); err != nil {
		undo.Rollback()
		e.met.TxnAborted.Add(1)
		r.respond(nil, err)
		return
	}
	// Garbage-collect the consumed upstream batch atomically with commit.
	if len(r.gcIDs) > 0 && r.inputStream != "" {
		if err := e.ee.GCStreamRows(ectx, r.inputStream, r.gcIDs); err != nil {
			undo.Rollback()
			e.met.TxnAborted.Add(1)
			r.respond(nil, fmt.Errorf("pe: gc of %s: %w", r.inputStream, err))
			return
		}
	}
	// Durability: the command-log record must be written before the commit
	// is acknowledged. Under group commit the append happens here (so the
	// log keeps transaction order) but the acknowledgement waits for the
	// batch fsync, delivered by the acker once the future resolves; the
	// worker itself moves straight on to the next transaction.
	ack, lerr := e.logCommit(r)
	if lerr != nil {
		undo.Rollback()
		e.met.TxnAborted.Add(1)
		r.respond(nil, fmt.Errorf("pe: command log: %w", lerr))
		return
	}
	undo.Release()
	e.commitPublish()
	e.met.TxnCommitted.Add(1)
	switch r.kind {
	case reqBorder:
		e.met.BatchesBorder.Add(1)
	case reqTriggered:
		e.met.TriggeredTxns.Add(1)
	}
	if ack == nil {
		e.met.ObserveLatency(time.Since(start))
	}

	// PE triggers: emitted batches become downstream transaction
	// executions, enqueued ahead of pending border work (ModeWorkflowSerial)
	// so the workflow chain for batch b completes before batch b+1 starts.
	continued := e.dispatchEmits(emits, r.batchID, r.origin, r.replay)

	// Per-dataflow accounting. Latency is observed only where the chain
	// ends (no dispatched descendants), so the graph's histogram holds
	// end-to-end workflow latencies rather than every stage's partial time.
	if r.stats != nil && !r.replay {
		switch r.kind {
		case reqBorder:
			r.stats.Batches.Add(1)
		case reqTriggered:
			r.stats.Triggered.Add(1)
		}
		if continued == 0 && !r.origin.IsZero() {
			r.stats.ObserveLatency(time.Since(r.origin))
		}
	}
	if ack != nil {
		e.queueAck(r, pctx.out, ack, start)
		return
	}
	r.respond(pctx.out, nil)
}

// commitPublish is the in-memory commit point: it publishes the pending
// sequence, making the transaction's writes visible to snapshot readers
// atomically across every table it touched, and paces the periodic
// version sweep. Partition worker only.
func (e *Engine) commitPublish() {
	e.clock.Publish()
	e.commitsSinceGC++
	if e.commitsSinceGC >= gcEveryCommits {
		e.runGC()
		return
	}
	// With a memory budget, probe the resident ledger between full sweeps
	// (cheap: one RLock per evictable table) so a burst of large inserts
	// cannot run the heap far past budget before the next 1024-commit GC.
	if e.cfg.MemoryBudget > 0 && e.commitsSinceGC%evictProbeCommits == 0 {
		var resident int64
		for _, t := range e.ee.Catalog().EvictableTables() {
			resident += t.ResidentBytes()
		}
		if resident > e.cfg.MemoryBudget+e.cfg.MemoryBudget/8 {
			e.runGC()
		}
	}
}

// evictProbeCommits paces the between-sweep budget probe.
const evictProbeCommits = 64

// gcEveryCommits bounds how many commits may pass between version sweeps,
// so chains stay short even on stores that never checkpoint. Inline
// per-table sweeps (storage.Table's tombstone-dominance trigger) handle
// hot tables between these.
const gcEveryCommits = 1024

// runGC sweeps every relation's version chains and index entries up to
// the snapshot watermark. Partition worker (or quiescent barrier) only.
func (e *Engine) runGC() {
	e.commitsSinceGC = 0
	wm := e.clock.Watermark()
	cat := e.ee.Catalog()
	reclaimed, retained := 0, 0
	for _, name := range cat.Names() {
		rc, rt := cat.Relation(name).Table.GC(wm)
		reclaimed += rc
		retained += rt
	}
	e.met.GCRuns.Add(1)
	e.met.GCVersionsReclaimed.Add(int64(reclaimed))
	e.met.VersionsRetained.Add(int64(retained - e.lastRetained))
	e.lastRetained = retained
	// Advance the reclamation epoch at the same rhythm: nodes the sweeps
	// above unlinked re-enter the allocation pools two advances later, once
	// every reader that could still hold them has left its epoch. A false
	// return (a straggling reader two epochs back) just means the next
	// sweep retries.
	e.clock.Epochs().Advance()
	e.runEvict(wm)
}

// runEvict is the anti-caching pass, riding the GC rhythm on the worker
// (DESIGN.md §7): release cold slots the watermark has unpinned, then —
// when the partition's evictable tables exceed the memory budget — move
// cold committed versions (clock second-chance over untouched tuples)
// into the cold store until resident bytes are back at budget.
func (e *Engine) runEvict(wm storage.Seq) {
	cat := e.ee.Catalog()
	tables := cat.EvictableTables()
	if len(tables) == 0 {
		return
	}
	var resident int64
	var evictTot, faultTot uint64
	for _, t := range tables {
		t.ReleaseColdFrees(wm)
		resident += t.ResidentBytes()
		_, ev, fa := t.ColdStats()
		evictTot += ev
		faultTot += fa
	}
	if need := resident - e.cfg.MemoryBudget; need > 0 && e.cfg.MemoryBudget > 0 {
		// Round-robin the overage across tables; a table with nothing
		// evictable (all pinned, touched, or oversized) just yields its
		// share to the next pass.
		for _, t := range tables {
			if need <= 0 {
				break
			}
			n, freed := t.Evict(wm, need)
			need -= freed
			resident -= freed
			evictTot += uint64(n)
		}
	}
	e.met.ColdEvictions.Add(int64(evictTot - e.lastColdEvict))
	e.met.ColdFaults.Add(int64(faultTot - e.lastColdFault))
	e.met.ColdResidentBytes.Add(resident - e.lastResident)
	e.lastColdEvict = evictTot
	e.lastColdFault = faultTot
	e.lastResident = resident
}

// runHandler executes the procedure body, converting panics into aborts so
// a buggy procedure cannot take down the partition.
func (e *Engine) runHandler(p *Procedure, pctx *ProcCtx) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("pe: procedure %s panicked: %v", p.Name, rec)
		}
	}()
	return p.Handler(pctx)
}

// logCommit writes the request's command-log record. On the synchronous
// path (SyncNever / SyncEveryRecord) it returns (nil, err) with the record
// durable per policy; on the group-commit path it returns the commit
// future the acknowledgement must wait for.
func (e *Engine) logCommit(r *txnRequest) (<-chan error, error) {
	if e.logger == nil || r.replay {
		return nil, nil
	}
	var rec *LogRecord
	switch r.kind {
	case reqInvoke:
		rec = &LogRecord{Kind: RecCall, Proc: r.proc.Name, Params: r.params}
	case reqBorder:
		rec = &LogRecord{Kind: RecBorder, Proc: r.proc.Name, Batch: r.batch,
			BatchID: r.batchID, InputStream: r.inputStream}
	case reqTriggered:
		if e.logMode != LogAllTEs {
			return nil, nil // upstream backup: derived work is not logged
		}
		rec = &LogRecord{Kind: RecTriggered, Proc: r.proc.Name, Batch: r.batch,
			BatchID: r.batchID, InputStream: r.inputStream}
	default:
		return nil, nil
	}
	if e.asyncLog != nil {
		return e.asyncLog.LogCommitAsync(rec)
	}
	return nil, e.logger.LogCommit(rec)
}

func (r *txnRequest) respond(res *ee.Result, err error) {
	if r.done == nil {
		return
	}
	if err != nil {
		r.done <- CallResult{Err: err}
		return
	}
	out := &Result{}
	if res != nil {
		out.Columns = res.Columns
		out.Rows = res.Rows
		out.RowsAffected = res.RowsAffected
	}
	r.done <- CallResult{Result: out}
}

// prepareForProc prepares a statement in the procedure's namespace, where
// the transient relation "batch" has the schema of the procedure's bound
// input stream (when one exists).
func (e *Engine) prepareForProc(p *Procedure, sqlText string) (*ee.Prepared, error) {
	e.prepMu.Lock()
	cache := e.prepared[p.Name]
	if cache == nil {
		cache = make(map[string]*ee.Prepared)
		e.prepared[p.Name] = cache
	}
	if prep, ok := cache[sqlText]; ok {
		e.prepMu.Unlock()
		return prep, nil
	}
	e.prepMu.Unlock()

	transient := map[string]*types.Schema{}
	e.ingestMu.Lock()
	for _, b := range e.bindings {
		if b.proc == p {
			if rel := e.ee.Catalog().Relation(b.stream); rel != nil {
				transient["batch"] = rel.Schema
			}
			break
		}
	}
	e.ingestMu.Unlock()
	prep, err := e.ee.Prepare(sqlText, transient)
	if err != nil {
		return nil, err
	}
	e.prepMu.Lock()
	e.prepared[p.Name][sqlText] = prep
	e.prepMu.Unlock()
	return prep, nil
}

// ---------- recovery replay ----------

// SetReplayDecisions installs the coordinator's decision map for recovery:
// a RecPrepare leg replays only when its transaction id maps to a commit
// decision; otherwise it is in-doubt and presumed aborted.
func (e *Engine) SetReplayDecisions(decisions map[uint64]bool) {
	e.replayDecisions = decisions
}

// SetReplaySlotMoves marks which prepared legs are slot-migration imports
// (transaction id → slot) and installs the evictor replay runs before
// applying one. A partition can re-own a slot it held in an earlier epoch,
// and its own log then re-creates the slot's rows before the incoming leg
// replays; the leg's images are the cutover-time truth, so the stale local
// copies — including rows deleted while the slot lived elsewhere — are
// evicted first.
func (e *Engine) SetReplaySlotMoves(moves map[uint64]int, evict func(slot int) error) {
	e.replaySlotMoves = moves
	e.slotEvict = evict
}

// Replay re-executes one logged record during recovery. The engine must
// not be started. In LogBorderOnly mode, border records re-derive their
// triggered descendants inline; in LogAllTEs mode triggered records come
// from the log and PE triggers are suppressed for upstream records.
func (e *Engine) Replay(rec *LogRecord) error {
	if e.started.Load() {
		return fmt.Errorf("pe: replay requires a stopped engine")
	}
	switch rec.Kind {
	case RecPrepare:
		if !e.replayDecisions[rec.MPTxnID] {
			return nil // no commit decision: presumed abort, drop the leg
		}
		return e.replayPreparedLeg(rec)
	case RecDecide:
		return nil // participant marker; the coordinator log is authoritative
	}
	p := e.Procedure(rec.Proc)
	if p == nil {
		return fmt.Errorf("pe: replay references unknown procedure %q", rec.Proc)
	}
	r := &txnRequest{proc: p, params: rec.Params, batch: rec.Batch,
		batchID: rec.BatchID, inputStream: rec.InputStream, replay: true,
		done: make(chan CallResult, 1)}
	switch rec.Kind {
	case RecCall:
		r.kind = reqInvoke
	case RecBorder:
		r.kind = reqBorder
		if rec.BatchID > e.nextBatchID {
			e.nextBatchID = rec.BatchID
		}
	case RecTriggered:
		r.kind = reqTriggered
		// In LogAllTEs mode the upstream record's re-run re-inserted the
		// consumed tuples into the input stream; this TE must GC the
		// oldest len(batch) of them, as the original execution did.
		if rec.InputStream != "" {
			if rel := e.ee.Catalog().Relation(rec.InputStream); rel != nil {
				need := len(rec.Batch)
				rel.Table.Scan(func(id storage.RowID, _ types.Row) bool {
					r.gcIDs = append(r.gcIDs, id)
					return len(r.gcIDs) < need
				})
			}
		}
	default:
		return fmt.Errorf("pe: unknown log record kind %d", rec.Kind)
	}

	// Collect re-derived descendants locally: they must never reach the
	// scheduler (the worker is stopped, and in LogAllTEs mode they arrive
	// as their own log records).
	e.replaying = true
	e.executeRequest(r)
	cr := <-r.done
	if cr.Err != nil {
		e.replaying = false
		e.replayQueue = nil
		return fmt.Errorf("pe: replay of %s: %w", rec.Proc, cr.Err)
	}
	return e.drainReplayDerived()
}

// drainReplayDerived finishes one replayed record's derived work. In
// LogAllTEs mode the triggered descendants arrive as their own log
// records, so the queue is discarded; under upstream backup they are
// re-derived inline, depth-first in FIFO order, exactly as
// ModeWorkflowSerial would have run them.
func (e *Engine) drainReplayDerived() error {
	if e.logMode == LogAllTEs {
		e.replayQueue = nil
		e.replaying = false
		return nil
	}
	for len(e.replayQueue) > 0 {
		next := e.replayQueue[0]
		e.replayQueue = e.replayQueue[1:]
		next.done = make(chan CallResult, 1)
		e.executeRequest(next)
		if cr := <-next.done; cr.Err != nil {
			e.replaying = false
			e.replayQueue = nil
			return fmt.Errorf("pe: replay of triggered %s: %w", next.proc.Name, cr.Err)
		}
	}
	e.replaying = false
	return nil
}

// NextBatchID exposes the border batch counter for snapshots. It takes
// ingestMu: a checkpoint barrier stops the worker, but client goroutines
// may still be buffering partial batches (and cutting full ones) under
// that lock; a batch cut after this read executes after the barrier and
// lands in the truncated log, so replay re-derives any higher ID.
func (e *Engine) NextBatchID() uint64 {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	return e.nextBatchID
}

// SetNextBatchID restores the border batch counter from a snapshot.
func (e *Engine) SetNextBatchID(v uint64) {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	e.nextBatchID = v
}
