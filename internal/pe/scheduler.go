package pe

import (
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/types"
)

// reqKind classifies queue entries.
type reqKind uint8

const (
	reqInvoke    reqKind = iota // direct OLTP procedure call
	reqBorder                   // border (BSP) batch from client ingest
	reqTriggered                // PE-triggered downstream (ISP) batch
	reqQuery                    // ad-hoc read-only query
	reqExec                     // ad-hoc write statement (own transaction)
	reqBarrier                  // drain marker
	reqMP                       // multi-partition leg: park on the 2PC barrier
)

// CallResult is the response to one request.
type CallResult struct {
	Result *Result
	Err    error
}

// Result mirrors ee.Result for clients of the partition engine.
type Result struct {
	Columns      []string
	Rows         []types.Row
	RowsAffected int
}

type txnRequest struct {
	kind    reqKind
	proc    *Procedure
	params  []types.Value
	batch   []types.Row
	batchID uint64
	// inputStream / gcIDs identify the consumed stream tuples a triggered
	// execution must garbage-collect at commit.
	inputStream string
	gcIDs       []storage.RowID
	sqlText     string // for reqQuery
	fn          func() error
	mp          *MPSession // for reqMP
	done        chan CallResult
	enqueued    time.Time
	// origin is the admission time of the chain's root request (border
	// ingest or OLTP call); PE-triggered descendants inherit it, so the
	// final stage's commit observes the workflow's end-to-end latency.
	origin time.Time
	// stats is the owning dataflow's counter set (nil for legacy direct
	// bindings and replay).
	stats *metrics.GraphStats
	// graph / tracked: the owning dataflow whose in-flight count this
	// request was admitted under (see Engine.graphTakeoff); tracked
	// requests retire the count when their execution finishes.
	graph   string
	tracked bool
	replay  bool // true during recovery: do not re-log
}

// SchedulerMode selects the admission policy.
type SchedulerMode uint8

const (
	// ModeWorkflowSerial runs PE-triggered executions before any pending
	// border/client work. With a workflow whose procedures share writable
	// tables this yields the serial chain SP1(b), SP2(b), SP3(b) before
	// SP1(b+1) — the schedule §3.1 requires.
	ModeWorkflowSerial SchedulerMode = iota
	// ModeFIFO admits strictly in arrival order (triggered executions go
	// to the back). Legal only for workflows without shared writable
	// tables; provided for the scheduler ablation.
	ModeFIFO
)

// scheduler is the two-level priority FIFO feeding the partition worker.
// PE-triggered work never passes through it in ModeWorkflowSerial — the
// worker keeps those in a goroutine-local queue, so this lock only
// synchronizes client submissions.
type scheduler struct {
	mu           sync.Mutex
	cond         *sync.Cond
	triggered    []*txnRequest
	normal       []*txnRequest
	mode         SchedulerMode
	closed       bool
	idle         bool // worker parked with both queues empty
	drainWaiters int
}

func newScheduler(mode SchedulerMode) *scheduler {
	s := &scheduler{mode: mode}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *scheduler) push(r *txnRequest) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if r.kind == reqTriggered && s.mode == ModeWorkflowSerial {
		s.triggered = append(s.triggered, r)
	} else {
		s.normal = append(s.normal, r)
	}
	s.cond.Signal()
	return true
}

// popAll blocks until work is available, then moves every queued request
// into buf (triggered first) in one lock acquisition — the partition worker
// then executes the batch without further synchronization.
func (s *scheduler) popAll(buf []*txnRequest) ([]*txnRequest, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if len(s.triggered) > 0 || len(s.normal) > 0 {
			buf = append(buf, s.triggered...)
			buf = append(buf, s.normal...)
			s.triggered = s.triggered[:0]
			s.normal = s.normal[:0]
			return buf, true
		}
		if s.closed {
			return nil, false
		}
		s.idle = true
		if s.drainWaiters > 0 {
			s.cond.Broadcast() // wake Drain waiters
		}
		s.cond.Wait()
		s.idle = false
	}
}

func (s *scheduler) close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *scheduler) pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.triggered) + len(s.normal)
}
