package pe

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/ee"
	"repro/internal/types"
)

func TestRunExclusiveSerializesWithTxns(t *testing.T) {
	e := newTestPE(t, Config{}, counterDDL)
	must(t, e.RegisterProcedure(&Procedure{
		Name: "ins",
		Handler: func(ctx *ProcCtx) error {
			_, err := ctx.Exec("INSERT INTO counter (id, n) VALUES (?, 0)", ctx.Params[0])
			return err
		},
	}))
	must(t, e.Start())
	defer e.Stop()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _ = e.Call("ins", types.NewInt(int64(i)))
		}(i)
	}
	// The exclusive function must observe a consistent count (no txn mid-
	// flight) every time it runs.
	sawConsistent := true
	for k := 0; k < 10; k++ {
		err := e.RunExclusive(func() error {
			res, err := e.ee.ExecSQL(&ee.ExecCtx{ReadOnly: true}, "SELECT COUNT(*) FROM counter")
			if err != nil {
				return err
			}
			if res.Rows[0][0].Int() < 0 {
				sawConsistent = false
			}
			return nil
		})
		must(t, err)
	}
	wg.Wait()
	e.Drain()
	if !sawConsistent {
		t.Fatal("exclusive saw inconsistent state")
	}
}

func TestNotStartedGuards(t *testing.T) {
	e := newTestPE(t, Config{}, counterDDL)
	must(t, e.RegisterProcedure(&Procedure{Name: "p", Handler: func(*ProcCtx) error { return nil }}))
	if _, err := e.Call("p"); err == nil || !strings.Contains(err.Error(), "not started") {
		t.Fatalf("Call before Start: %v", err)
	}
	if _, err := e.Query("SELECT 1 FROM counter"); err == nil {
		t.Fatal("Query before Start accepted")
	}
	if _, err := e.Exec("DELETE FROM counter"); err == nil {
		t.Fatal("Exec before Start accepted")
	}
	if err := e.RunExclusive(func() error { return nil }); err == nil {
		t.Fatal("RunExclusive before Start accepted")
	}
	must(t, e.Start())
	defer e.Stop()
	if _, err := e.Call("p"); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err == nil {
		t.Fatal("double Start accepted")
	}
}

func TestLatencyObserved(t *testing.T) {
	e := newTestPE(t, Config{}, counterDDL)
	must(t, e.RegisterProcedure(&Procedure{Name: "p", Handler: func(*ProcCtx) error { return nil }}))
	must(t, e.Start())
	defer e.Stop()
	for i := 0; i < 20; i++ {
		if _, err := e.Call("p"); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Metrics().Snapshot()
	if s.LatencyCount != 20 {
		t.Fatalf("latency samples = %d", s.LatencyCount)
	}
}

func TestDownstreamAbortDropsBatchOnly(t *testing.T) {
	// A failing interior stage must not corrupt upstream state: the
	// upstream commit stands, the downstream batch is dropped, and the
	// engine keeps running.
	e := newTestPE(t, Config{}, counterDDL)
	must(t, e.RegisterProcedure(&Procedure{
		Name: "producer",
		Handler: func(ctx *ProcCtx) error {
			return ctx.Emit("mid_s", ctx.Batch...)
		},
	}))
	calls := 0
	must(t, e.RegisterProcedure(&Procedure{
		Name: "flaky",
		Handler: func(ctx *ProcCtx) error {
			calls++
			if ctx.Batch[0][0].Int()%2 == 0 {
				return fmt.Errorf("rejecting even value")
			}
			_, err := ctx.Exec("INSERT INTO log_t VALUES ('ok', ?, 0)", ctx.Batch[0][0])
			return err
		},
	}))
	must(t, e.BindStream("in_s", "producer", 1))
	must(t, e.BindStream("mid_s", "flaky", 1))
	must(t, e.Start())
	defer e.Stop()
	for v := int64(1); v <= 6; v++ {
		must(t, e.Ingest("in_s", intRow(v)))
	}
	e.Drain()
	res, err := e.Query("SELECT COUNT(*) FROM log_t")
	must(t, err)
	if res.Rows[0][0].Int() != 3 { // odd values only
		t.Fatalf("flaky stage processed %v", res.Rows)
	}
	if got := e.Metrics().TxnAborted.Load(); got != 3 {
		t.Fatalf("aborts = %d", got)
	}
	// Aborted batches' stream tuples leak only until their TE aborts: the
	// GC happens inside the TE, which rolled back, so the tuples remain in
	// the stream (at-least-once semantics for a retry policy to consume).
	res, err = e.Query("SELECT COUNT(*) FROM mid_s")
	must(t, err)
	if res.Rows[0][0].Int() != 3 {
		t.Fatalf("aborted batches in stream: %v", res.Rows)
	}
}

func TestFIFOModeAllowedWithoutConflicts(t *testing.T) {
	// A workflow whose stages share no writable tables is legal under
	// ModeFIFO (the paper's serial requirement only applies to shared
	// state).
	e := newTestPE(t, Config{Mode: ModeFIFO}, counterDDL)
	must(t, e.RegisterProcedure(&Procedure{
		Name:     "stage_a",
		WriteSet: []string{"mid_s"},
		Handler:  func(ctx *ProcCtx) error { return ctx.Emit("mid_s", ctx.Batch...) },
	}))
	must(t, e.RegisterProcedure(&Procedure{
		Name:     "stage_b",
		WriteSet: []string{"log_t"},
		Handler: func(ctx *ProcCtx) error {
			_, err := ctx.Exec("INSERT INTO log_t VALUES ('b', ?, 0)", ctx.Batch[0][0])
			return err
		},
	}))
	must(t, e.BindStream("in_s", "stage_a", 1))
	must(t, e.BindStream("mid_s", "stage_b", 1))
	must(t, e.Start())
	defer e.Stop()
	for v := int64(1); v <= 10; v++ {
		must(t, e.Ingest("in_s", intRow(v)))
	}
	e.Drain()
	res, err := e.Query("SELECT COUNT(*) FROM log_t")
	must(t, err)
	if res.Rows[0][0].Int() != 10 {
		t.Fatalf("fifo workflow lost tuples: %v", res.Rows)
	}
	// Natural order still holds per stage under FIFO.
	res, err = e.Query("SELECT v FROM log_t ORDER BY seq")
	must(t, err)
	_ = res
}
