package pe

import (
	"testing"
	"time"

	"repro/internal/types"
)

const kvDDL = `CREATE TABLE kv (k INT PRIMARY KEY, v BIGINT);`

// TestQueryRunsOffTheWorker proves the headline property of the MVCC read
// path: an ad-hoc SELECT completes while the partition worker is stuck
// inside a long-running procedure — the old path would queue behind it.
func TestQueryRunsOffTheWorker(t *testing.T) {
	e := newTestPE(t, Config{}, kvDDL)
	block := make(chan struct{})
	entered := make(chan struct{})
	if err := e.RegisterProcedure(&Procedure{
		Name: "stall",
		Handler: func(*ProcCtx) error {
			close(entered)
			<-block
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	if _, err := e.Exec("INSERT INTO kv VALUES (1, 10)"); err != nil {
		t.Fatal(err)
	}

	done := e.CallAsync("stall")
	<-entered // the worker is now parked inside the procedure

	res, err := e.Query("SELECT v FROM kv WHERE k = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 10 {
		t.Fatalf("snapshot read under a stalled worker: %v", res.Rows)
	}
	if got := e.Metrics().SnapshotReads.Load(); got == 0 {
		t.Fatal("snapshot-read counter not bumped")
	}
	close(block)
	if cr := <-done; cr.Err != nil {
		t.Fatal(cr.Err)
	}

	// The worker-queued baseline path still works and counts separately.
	if _, err := e.QueryOnWorker("SELECT v FROM kv WHERE k = 1"); err != nil {
		t.Fatal(err)
	}
	if got := e.Metrics().WorkerQueries.Load(); got != 1 {
		t.Fatalf("WorkerQueries = %d", got)
	}
}

// TestSnapshotPinSurvivesDeleteTruncateCheckpointGC pins a sequence, then
// deletes the row, truncates the table, runs the checkpoint barrier (which
// sweeps versions), and still reads the pinned view; after release the
// sweep reclaims it.
func TestSnapshotPinSurvivesDeleteTruncateCheckpointGC(t *testing.T) {
	e := newTestPE(t, Config{}, kvDDL)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	for i := int64(1); i <= 4; i++ {
		if _, err := e.Exec("INSERT INTO kv VALUES (?, ?)", types.NewInt(i), types.NewInt(i*10)); err != nil {
			t.Fatal(err)
		}
	}

	pin := e.AcquireSnapshot()
	seq := pin.Seq()
	if _, err := e.Exec("DELETE FROM kv WHERE k = 2"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec("DELETE FROM kv"); err != nil { // truncate the rest
		t.Fatal(err)
	}
	// Checkpoint-style barrier: drains commits and runs the version sweep.
	if err := e.RunExclusive(func() error { return nil }); err != nil {
		t.Fatal(err)
	}

	res, err := e.QueryAtSeq(seq, "SELECT v FROM kv WHERE k = 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 20 {
		t.Fatalf("reader opened before delete lost the row: %v", res.Rows)
	}
	res, err = e.QueryAtSeq(seq, "SELECT COUNT(*) FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 4 {
		t.Fatalf("pinned snapshot count = %v", res.Rows)
	}
	// The live view is empty.
	if res, err = e.Query("SELECT COUNT(*) FROM kv"); err != nil || res.Rows[0][0].Int() != 0 {
		t.Fatalf("live count: %v %v", res, err)
	}
	e.ReleaseSnapshot(pin)

	// With the pin gone the barrier sweep reclaims every dead version.
	if err := e.RunExclusive(func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	rel := e.EE().Catalog().Relation("kv")
	if versions, dead := rel.Table.VersionStats(); versions != 0 || dead != 0 {
		t.Fatalf("after release+GC: versions=%d dead=%d", versions, dead)
	}
	if got := e.Metrics().GCRuns.Load(); got < 2 {
		t.Fatalf("GCRuns = %d", got)
	}
}

// TestQueryNonSelectFallsBackToWorker keeps the historical error surface
// for DML pushed through Query.
func TestQueryNonSelectFallsBackToWorker(t *testing.T) {
	e := newTestPE(t, Config{}, kvDDL)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	if _, err := e.Query("INSERT INTO kv VALUES (1, 1)"); err == nil {
		t.Fatal("INSERT through Query must fail read-only")
	}
	// And it must not have left a row behind.
	res, err := e.Query("SELECT COUNT(*) FROM kv")
	if err != nil || res.Rows[0][0].Int() != 0 {
		t.Fatalf("count after rejected insert: %v %v", res, err)
	}
}

// TestSnapshotSeesOnlyCommittedProcedureState verifies a concurrent reader
// cannot observe a procedure's intermediate writes: it sees the counter
// before or after the whole transaction, never mid-flight.
func TestSnapshotSeesOnlyCommittedProcedureState(t *testing.T) {
	e := newTestPE(t, Config{}, kvDDL)
	if err := e.RegisterProcedure(&Procedure{
		Name: "twostep",
		Handler: func(ctx *ProcCtx) error {
			if _, err := ctx.Exec("UPDATE kv SET v = v + 1 WHERE k = 1"); err != nil {
				return err
			}
			time.Sleep(200 * time.Microsecond) // widen the mid-txn window
			_, err := ctx.Exec("UPDATE kv SET v = v + 1 WHERE k = 2")
			return err
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	if _, err := e.Exec("INSERT INTO kv VALUES (1, 0)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec("INSERT INTO kv VALUES (2, 0)"); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	fail := make(chan string, 1)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			res, err := e.Query("SELECT SUM(v) FROM kv")
			if err != nil {
				fail <- err.Error()
				return
			}
			if s := res.Rows[0][0].Int(); s%2 != 0 {
				fail <- "observed a half-applied transaction (odd sum)"
				return
			}
		}
	}()
	for i := 0; i < 300; i++ {
		if _, err := e.Call("twostep"); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
}
