// Benchmarks regenerating the paper's demonstrated results, one per
// experiment in DESIGN.md §2 (E1–E6), plus engine microbenchmarks. Custom
// metrics carry the non-time results (anomaly counts, round trips per
// vote) so `go test -bench` output stands alone as the experiment record.
package sstore_test

import (
	"os"
	"testing"
	"time"

	sstore "repro"
	"repro/internal/apps/bikeshare"
	"repro/internal/apps/voter"
	"repro/internal/bench"
	"repro/internal/workload"
)

const benchSeed = 42

// ---------- E1: correctness (anomalies as metrics) ----------

func BenchmarkE1CorrectnessAudit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.E1(benchSeed, 4000, []int{16})
		if err != nil {
			b.Fatal(err)
		}
		var ss, hs float64
		for _, r := range rows {
			if r.System == "S-Store" {
				ss = float64(r.Anomalies)
			} else {
				hs = float64(r.Anomalies)
			}
		}
		b.ReportMetric(ss, "sstore-anomalies")
		b.ReportMetric(hs, "hstore-anomalies@p16")
	}
}

// ---------- E2: throughput, S-Store push vs H-Store poll ----------

func benchVoterFeed(b *testing.B, n int) []workload.Vote {
	b.Helper()
	return workload.Votes(workload.DefaultVoterConfig(benchSeed, n))
}

func BenchmarkE2SStorePush(b *testing.B) {
	feed := benchVoterFeed(b, 4000)
	for _, rtt := range []time.Duration{0, 500 * time.Microsecond} {
		b.Run("rtt="+rtt.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := bench.E2(benchSeed, len(feed), []time.Duration{rtt}, 16, 16)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rows {
					if r.System == "S-Store(chunk=16)" {
						b.ReportMetric(r.VotesSec, "votes/s")
						if !r.Correct {
							b.Fatal("S-Store run was not correct")
						}
					}
				}
			}
		})
	}
}

func BenchmarkE2HStorePoll(b *testing.B) {
	feed := benchVoterFeed(b, 4000)
	for _, rtt := range []time.Duration{0, 500 * time.Microsecond} {
		b.Run("rtt="+rtt.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := bench.E2(benchSeed, len(feed), []time.Duration{rtt}, 16, 16)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rows {
					if r.System == "H-Store(p=16)" {
						b.ReportMetric(r.VotesSec, "votes/s")
					}
				}
			}
		})
	}
}

// ---------- E2TCP: throughput over a real localhost TCP deployment ----------

func BenchmarkE2TCP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.E2TCP(benchSeed, 4000, 16, 16)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch {
			case r.Correct:
				b.ReportMetric(r.VotesSec, "sstore-tcp-votes/s")
			default:
				b.ReportMetric(r.VotesSec, "hstore-tcp-votes/s")
			}
		}
	}
}

// ---------- E3: round trips per vote ----------

func BenchmarkE3RoundTrips(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.E3(benchSeed, 3000)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.System {
			case "S-Store":
				b.ReportMetric(r.ClientToPE/1000, "sstore-clientPE/vote")
				b.ReportMetric(r.PEToEE/1000, "sstore-PEEE/vote")
			case "H-Store":
				b.ReportMetric(r.ClientToPE/1000, "hstore-clientPE/vote")
				b.ReportMetric(r.PEToEE/1000, "hstore-PEEE/vote")
			}
		}
	}
}

// ---------- E4: BikeShare mixed workload ----------

func BenchmarkE4BikeShareMixed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.E4(benchSeed, 10, 5, 30, 120)
		if err != nil {
			b.Fatal(err)
		}
		if !res.InvariantsOK || res.DoubleDiscounts != 0 {
			b.Fatalf("E4 integrity failure: %+v", res)
		}
		b.ReportMetric(float64(res.GPSTuples)/res.Elapsed.Seconds(), "gps-tuples/s")
		b.ReportMetric(float64(res.Alerts), "alerts")
	}
}

// ---------- E5: recovery ----------

func BenchmarkE5Recovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dirA, err := os.MkdirTemp("", "e5a")
		if err != nil {
			b.Fatal(err)
		}
		dirB, err := os.MkdirTemp("", "e5b")
		if err != nil {
			b.Fatal(err)
		}
		rows, err := bench.E5(dirA, dirB, benchSeed, 3000)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.StateEqual {
				b.Fatalf("%s: recovered state diverged", r.Mode)
			}
			switch r.Mode {
			case "upstream-backup":
				b.ReportMetric(float64(r.LogBytes), "ub-logbytes")
				b.ReportMetric(float64(r.RecoveryDur.Milliseconds()), "ub-recovery-ms")
			case "log-all-TEs":
				b.ReportMetric(float64(r.LogBytes), "all-logbytes")
				b.ReportMetric(float64(r.RecoveryDur.Milliseconds()), "all-recovery-ms")
			}
		}
		os.RemoveAll(dirA)
		os.RemoveAll(dirB)
	}
}

// ---------- E6: multi-partition scale-out ----------

func BenchmarkE6PartitionScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.E6(benchSeed, 6000, []int{1, 4}, 16)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.Correct {
				b.Fatalf("partitions=%d counted %d valid votes (reference mismatch)", r.Partitions, r.Counted)
			}
			switch r.Partitions {
			case 1:
				b.ReportMetric(r.VotesSec, "p1-votes/s")
			case 4:
				b.ReportMetric(r.VotesSec, "p4-votes/s")
				b.ReportMetric(r.Speedup, "p4-speedup")
			}
		}
	}
}

// ---------- engine microbenchmarks ----------

// BenchmarkVoterVoteSStore measures per-vote cost through the full
// SP1→SP2(→SP3) workflow, amortized.
func BenchmarkVoterVoteSStore(b *testing.B) {
	st := sstore.Open(sstore.Config{})
	if err := voter.Setup(st, 25); err != nil {
		b.Fatal(err)
	}
	if err := st.Start(); err != nil {
		b.Fatal(err)
	}
	defer st.Stop()
	feed := workload.Votes(workload.DefaultVoterConfig(benchSeed, 200_000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := feed[i%len(feed)]
		if err := st.Ingest("votes_in",
			sstore.Row{sstore.Int(v.Phone), sstore.Int(v.Contestant), sstore.Int(v.TS)}); err != nil {
			b.Fatal(err)
		}
	}
	st.FlushBatches()
	st.Drain()
}

// BenchmarkOLTPCall measures a single-statement OLTP procedure round trip
// through the partition engine.
func BenchmarkOLTPCall(b *testing.B) {
	st := sstore.Open(sstore.Config{})
	if err := st.ExecScript("CREATE TABLE t (k INT PRIMARY KEY, v BIGINT)"); err != nil {
		b.Fatal(err)
	}
	if err := st.RegisterProcedure(&sstore.Procedure{
		Name: "put",
		Handler: func(ctx *sstore.ProcCtx) error {
			_, err := ctx.Exec("INSERT INTO t VALUES (?, ?)", ctx.Params[0], ctx.Params[1])
			return err
		},
	}); err != nil {
		b.Fatal(err)
	}
	if err := st.Start(); err != nil {
		b.Fatal(err)
	}
	defer st.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Call("put", sstore.Int(int64(i)), sstore.Int(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWindowSlide measures native tuple-window maintenance per tuple.
func BenchmarkWindowSlide(b *testing.B) {
	st := sstore.Open(sstore.Config{})
	if err := st.ExecScript(`
		CREATE STREAM s (v BIGINT);
		CREATE WINDOW w ON s ROWS 100 SLIDE 1;
	`); err != nil {
		b.Fatal(err)
	}
	if err := st.RegisterProcedure(&sstore.Procedure{
		Name:    "noop",
		Handler: func(ctx *sstore.ProcCtx) error { return nil },
	}); err != nil {
		b.Fatal(err)
	}
	if err := st.BindStream("s", "noop", 64); err != nil {
		b.Fatal(err)
	}
	if err := st.Start(); err != nil {
		b.Fatal(err)
	}
	defer st.Stop()
	row := sstore.Row{sstore.Int(1)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Ingest("s", row); err != nil {
			b.Fatal(err)
		}
	}
	st.FlushBatches()
	st.Drain()
}

// BenchmarkGPSIngest measures the BikeShare streaming stage end to end.
func BenchmarkGPSIngest(b *testing.B) {
	st := sstore.Open(sstore.Config{})
	if err := bikeshare.Setup(st, 10, 5, 20); err != nil {
		b.Fatal(err)
	}
	if err := st.Start(); err != nil {
		b.Fatal(err)
	}
	defer st.Stop()
	points := workload.GPS(workload.DefaultBikeConfig(benchSeed, 50, 400))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := points[i%len(points)]
		// keep event time moving forward so the time window slides
		p.TS += int64(i/len(points)) * 400_000_000
		if err := bikeshare.IngestGPS(st, []workload.GPSPoint{p}); err != nil {
			b.Fatal(err)
		}
	}
	st.FlushBatches()
	st.Drain()
}

// BenchmarkAdHocQuery measures the read-only query path (monitoring GUIs).
func BenchmarkAdHocQuery(b *testing.B) {
	st := sstore.Open(sstore.Config{})
	if err := voter.Setup(st, 25); err != nil {
		b.Fatal(err)
	}
	if err := st.Start(); err != nil {
		b.Fatal(err)
	}
	defer st.Stop()
	if err := voter.RunSStore(st, workload.Votes(workload.DefaultVoterConfig(benchSeed, 500))); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Query(`SELECT c.name, vc.n FROM vote_counts vc
			JOIN contestants c ON c.id = vc.contestant
			ORDER BY vc.n DESC, c.id ASC LIMIT 3`); err != nil {
			b.Fatal(err)
		}
	}
}
