// Package sstore is a single-node reproduction of S-Store, the streaming
// NewSQL system of Cetintemel et al. (PVLDB 7(13), 2014): a main-memory
// OLTP engine in the H-Store mold — serial per-partition execution,
// stored procedures, command logging + snapshots — extended with native
// stream processing:
//
//   - Streams: append-only relations with hidden, garbage-collected state.
//   - Windows: engine-maintained tuple (ROWS n SLIDE s) and time
//     (RANGE d SLIDE s) windows over streams.
//   - EE triggers: SQL chained inside the running transaction when tuples
//     arrive on a stream or a window slides.
//   - PE triggers / workflows: committed stream output becomes the input
//     batch of the downstream stored procedure, with the paper's ordering
//     guarantees (natural order, workflow order, serial execution over
//     shared writable tables, window scoping).
//
// # Quick start
//
// A workflow is declared as one named Dataflow — procedure nodes, stream
// edges with batch sizes, and EE triggers together — and deployed
// atomically: Deploy validates the whole graph (unknown streams or
// procedures, duplicate consumers, cycles, invalid batch sizes) before
// touching any partition.
//
//	st := sstore.Open(sstore.Config{})
//	st.ExecScript(`
//	    CREATE STREAM readings (sensor INT, v FLOAT);
//	    CREATE TABLE alarms (sensor INT, v FLOAT);
//	`)
//	st.RegisterProcedure(&sstore.Procedure{
//	    Name: "detect",
//	    Handler: func(ctx *sstore.ProcCtx) error {
//	        _, err := ctx.Exec("INSERT INTO alarms SELECT sensor, v FROM batch WHERE v > 100.0")
//	        return err
//	    },
//	})
//	st.Deploy(&sstore.Dataflow{
//	    Name:  "alarming",
//	    Nodes: []sstore.DataflowNode{{Proc: "detect", Input: "readings", Batch: 8}},
//	})
//	st.Start()
//	st.Ingest("readings", sstore.Row{sstore.Int(1), sstore.Float(250)})
//
// Deployed graphs are catalog objects: list them with the SHOW DATAFLOWS
// statement (or sstorecli's dataflows command), render one with
// EXPLAIN DATAFLOW <name>, and pause/resume one by name with
// Store.PauseDataflow / Store.ResumeDataflow — while paused, border
// ingest for the graph's streams queues and nothing is lost across the
// pause. Store.UndeployDataflow removes a graph live: admitted work
// drains behind the pause gate, then the wiring and catalog entries
// unwind on every partition (refused while another graph consumes one of
// its streams — undeploy the consumer first). Multi-stage graphs add Emits declarations so the deploy
// validator sees the edges; see examples/bikealert. The single-edge
// Store.BindStream and Store.CreateTrigger calls remain as compat shims
// that deploy anonymous graphs ("bind_<stream>" / "trigger_<rel>_<name>").
//
// # Scale-out
//
// Config.Partitions > 1 runs N independent serial-execution partitions in
// the H-Store mold, each with its own catalog replica, engine goroutine,
// and WAL segment. Declare a hash key with PARTITION BY on tables and
// streams; Ingest and keyed Calls (Procedure.PartitionParam) route to the
// owning partition, ad-hoc queries fan out and merge:
//
//	st := sstore.Open(sstore.Config{Partitions: 4})
//	st.ExecScript(`CREATE STREAM readings (sensor INT, v FLOAT) PARTITION BY sensor;`)
//
// Routing goes through a 256-entry slot table (hash -> slot -> partition)
// rather than hash%N arithmetic, which makes the partition count elastic:
// Store.Rebalance(n) — also reachable as the ALTER SYSTEM PARTITIONS n
// statement or sstorecli's partitions verb — grows a running store,
// adding partition workers and migrating slots one at a time under live
// load (MVCC snapshot copy, catch-up replay, a sub-millisecond cutover
// barrier per slot). The migration is WAL-logged and crash-safe, and
// reopening a durable store with a larger Partitions count redistributes
// at recovery. Shrinking is not supported. Tables declared PARTITION BY
// col PARTIAL hold deliberate partition-local partial state (for example
// per-partition counts merged by SUM at query time); they are exempt from
// migration, and procedures maintaining them should upsert so partials
// self-initialize on partitions added later. See DESIGN.md §4.5 and the
// E10 experiment.
//
// # Snapshot reads
//
// Storage is multi-versioned: ad-hoc read-only queries (Store.Query)
// execute on the calling goroutine against an MVCC snapshot pinned at the
// latest committed sequence instead of queueing on the serial partition
// worker, so reads scale with client cores, never block behind writes or
// an in-flight cross-partition transaction, and always see a consistent
// committed state (per partition, and as a consistent cut across
// partitions for fan-out queries). Writes, stored procedures, and the
// dataflow hot path keep H-Store's serial execution untouched; old row
// versions are reclaimed by a watermark GC once no reader can see them.
// See DESIGN.md §1.6 and the E9 experiment.
//
// # Anti-caching (larger-than-memory tables)
//
// Config.MemoryBudget > 0 bounds the heap bytes of resident row versions:
// each partition gets an equal share plus a cold-tuple page store on disk
// (under Config.Dir, or a temp file when volatile), and the partition
// worker evicts cold committed versions — least recently touched first,
// via a per-tuple clock bit — into 32 KiB slotted pages at GC rhythm,
// leaving in-memory stubs that keep their MVCC visibility stamps. Reads
// that hit a stub fault the tuple back through a pinned clock-replacement
// buffer pool: the serial worker rehydrates it into the version chain,
// while snapshot readers decode read-through without stalling the worker.
// The cold store is deliberately volatile (never fsynced); recovery
// re-derives evicted data from the checkpoint + command-log replay, so
// durability guarantees are unchanged. Watch the cold_evictions /
// cold_faults / cold_resident_bytes rows of Store.StatsResult, and see
// DESIGN.md §7 and the E13 experiment.
//
// Work that genuinely spans partitions runs through the two-phase-commit
// coordinator: ad-hoc multi-row INSERTs spanning shards, INSERT ... SELECT,
// and broadcast UPDATE / DELETE commit atomically across partitions, and
// Store.MultiPartitionTxn runs an application handler as one atomic,
// durable cross-partition transaction:
//
//	st.MultiPartitionTxn(func(tx *sstore.MPTxn) error {
//	    from := tx.PartitionFor(sstore.Int(a))
//	    to := tx.PartitionFor(sstore.Int(b))
//	    if _, err := tx.Exec(from, "UPDATE acct SET bal = bal - 10 WHERE id = ?", sstore.Int(a)); err != nil {
//	        return err
//	    }
//	    _, err := tx.Exec(to, "UPDATE acct SET bal = bal + 10 WHERE id = ?", sstore.Int(b))
//	    return err
//	})
//
// The package is a thin façade over internal/core; see DESIGN.md for the
// architecture and EXPERIMENTS.md for the paper-reproduction results.
package sstore

import (
	"repro/internal/core"
	"repro/internal/pe"
	"repro/internal/types"
	"repro/internal/wal"
)

// Store is one S-Store instance: a router over Config.Partitions
// serial-execution partitions (one by default).
type Store = core.Store

// Config configures a Store; the zero value is a volatile, fully
// stream-enabled single-partition engine. Set Partitions > 1 for hash-
// partitioned scale-out.
type Config = core.Config

// Procedure is a stored procedure definition.
type Procedure = pe.Procedure

// ProcCtx is the execution context handed to procedure handlers.
type ProcCtx = pe.ProcCtx

// Result is a statement or procedure result.
type Result = pe.Result

// MPTxn is the handle of a coordinated cross-partition transaction (see
// Store.MultiPartitionTxn).
type MPTxn = core.MPTxn

// Dataflow is a named workflow graph — procedure nodes, stream edges, EE
// triggers — deployed atomically as one unit with Store.Deploy.
type Dataflow = core.Dataflow

// DataflowNode is one procedure node of a Dataflow: a consumed Input
// stream with its Batch size (empty Input for OLTP entry nodes) and the
// streams the node Emits to.
type DataflowNode = core.DataflowNode

// DataflowTrigger is one EE trigger deployed with a Dataflow.
type DataflowTrigger = core.DataflowTrigger

// Value is one SQL scalar value.
type Value = types.Value

// Row is one tuple.
type Row = types.Row

// Scheduler modes (Config.Mode).
const (
	// ModeWorkflowSerial is the S-Store default: PE-triggered transactions
	// run before pending border work, giving serial workflow chains.
	ModeWorkflowSerial = pe.ModeWorkflowSerial
	// ModeFIFO admits strictly in arrival order (ablation only).
	ModeFIFO = pe.ModeFIFO
)

// Log modes (Config.LogMode).
const (
	// LogBorderOnly is upstream backup: log only client inputs.
	LogBorderOnly = pe.LogBorderOnly
	// LogAllTEs logs every transaction execution.
	LogAllTEs = pe.LogAllTEs
)

// Sync policies (Config.Sync).
const (
	// SyncNever leaves flushing to the OS (fastest, weakest).
	SyncNever = wal.SyncNever
	// SyncEveryRecord fsyncs on every commit's critical path.
	SyncEveryRecord = wal.SyncEveryRecord
	// SyncGroupCommit batches fsyncs per partition: execution keeps going
	// while a commit daemon hardens batches, and clients are acknowledged
	// when their commit future resolves (tune with
	// Config.GroupCommitInterval / GroupCommitMaxBatch).
	SyncGroupCommit = wal.SyncGroupCommit
)

// Open creates a Store from the configuration. Call ExecScript /
// RegisterProcedure / Deploy, then Start.
func Open(cfg Config) *Store { return core.Open(cfg) }

// Null is the SQL NULL value.
var Null = types.Null

// Int builds a BIGINT value.
func Int(v int64) Value { return types.NewInt(v) }

// Float builds a FLOAT value.
func Float(v float64) Value { return types.NewFloat(v) }

// Str builds a VARCHAR value.
func Str(v string) Value { return types.NewString(v) }

// Bool builds a BOOLEAN value.
func Bool(v bool) Value { return types.NewBool(v) }

// TS builds a TIMESTAMP value from microseconds since the epoch.
func TS(usec int64) Value { return types.NewTimestamp(usec) }
